/**
 * @file
 * Trace-schema tests (ctest label "trace", wired into tier1): a trace
 * produced in-process and the committed example trace must both be
 * valid Chrome-trace JSON — parseable, with metadata, with "X"
 * duration events well-nested per (pid,tid) track and "b"/"e" async
 * pairs correctly matched — so a committed trace is guaranteed to load
 * in chrome://tracing / ui.perfetto.dev.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "harness/configs.hh"
#include "harness/runner.hh"
#include "mem/global_memory.hh"
#include "sim/gpu.hh"
#include "workloads/benchmarks.hh"

#include "mini_json.hh"

using namespace wasp;

namespace
{

/**
 * Validate one Chrome-trace document. Asserts (via gtest) the schema
 * contract the exporter promises:
 *  - top-level {"traceEvents": [...]} object;
 *  - every event carries ph/pid/tid/ts/name;
 *  - "X" events carry dur and are well-nested per (pid,tid): sorted by
 *    start time, each next event either begins at-or-after every open
 *    span's end, or lies entirely inside the innermost open span;
 *  - every "e" closes an earlier "b" with the same id and end >= begin
 *    (unmatched "b" is allowed: a failure-path trace truncates);
 *  - process/thread metadata is present.
 */
void
validateTrace(const minijson::Value &doc, const std::string &what)
{
    ASSERT_TRUE(doc.isObject()) << what;
    ASSERT_TRUE(doc.has("traceEvents")) << what;
    const auto &events = doc["traceEvents"].array;
    ASSERT_FALSE(events.empty()) << what;

    struct Span
    {
        uint64_t ts;
        uint64_t dur;
    };
    std::map<std::pair<int, int>, std::vector<Span>> tracks;
    std::map<uint64_t, uint64_t> open_async; // id -> begin ts
    std::set<std::string> meta_names;
    size_t n_complete = 0;

    for (const minijson::Value &e : events) {
        ASSERT_TRUE(e.isObject()) << what;
        ASSERT_TRUE(e.has("ph")) << what;
        std::string ph = e["ph"].str;
        ASSERT_TRUE(e.has("pid")) << what;
        ASSERT_TRUE(e.has("name")) << what;
        if (ph == "M") {
            meta_names.insert(e["name"].str);
            continue;
        }
        ASSERT_TRUE(e.has("tid")) << what;
        ASSERT_TRUE(e.has("ts")) << what;
        int pid = static_cast<int>(e["pid"].number);
        int tid = static_cast<int>(e["tid"].number);
        uint64_t ts = static_cast<uint64_t>(e["ts"].number);
        if (ph == "X") {
            ASSERT_TRUE(e.has("dur")) << what;
            tracks[{pid, tid}].push_back(
                {ts, static_cast<uint64_t>(e["dur"].number)});
            ++n_complete;
        } else if (ph == "b") {
            ASSERT_TRUE(e.has("id")) << what;
            open_async[static_cast<uint64_t>(e["id"].number)] = ts;
        } else if (ph == "e") {
            ASSERT_TRUE(e.has("id")) << what;
            uint64_t id = static_cast<uint64_t>(e["id"].number);
            auto it = open_async.find(id);
            ASSERT_NE(it, open_async.end())
                << what << ": 'e' with no matching 'b', id " << id;
            EXPECT_GE(ts, it->second)
                << what << ": async span ends before it begins";
            open_async.erase(it);
        } else if (ph == "i" || ph == "C") {
            // Point events and counters need no pairing checks.
        } else {
            ADD_FAILURE() << what << ": unexpected phase '" << ph << "'";
        }
    }
    EXPECT_GT(n_complete, 0u) << what;
    EXPECT_TRUE(meta_names.count("process_name")) << what;
    EXPECT_TRUE(meta_names.count("thread_name")) << what;

    // Well-nesting per track: a stack of open spans; each event must
    // start after the innermost open span ends (pop it) or lie fully
    // inside it.
    for (auto &[key, spans] : tracks) {
        std::stable_sort(spans.begin(), spans.end(),
                         [](const Span &a, const Span &b) {
                             return a.ts < b.ts;
                         });
        std::vector<uint64_t> ends;
        for (const Span &s : spans) {
            while (!ends.empty() && s.ts >= ends.back())
                ends.pop_back();
            if (!ends.empty()) {
                ASSERT_LE(s.ts + s.dur, ends.back())
                    << what << ": overlapping X events on track pid "
                    << key.first << " tid " << key.second << " at ts "
                    << s.ts;
            }
            ends.push_back(s.ts + s.dur);
        }
    }
}

/** Trace one benchmark in-process and return the rendered JSON. */
std::string
traceBenchmark(const std::string &app, harness::PaperConfig which)
{
    harness::ConfigSpec spec = harness::makeConfig(which);
    TraceSink sink;
    uint64_t base = 0;
    const workloads::BenchmarkDef &bench = workloads::benchmark(app);
    for (const workloads::KernelMix &mix : bench.kernels) {
        // Untraced pass settles the per-kernel compile decision (it may
        // simulate twice); the traced rerun executes exactly once.
        mem::GlobalMemory warm_gmem;
        workloads::BuiltKernel warm_k = mix.build(warm_gmem);
        harness::KernelResult kr =
            harness::runKernel(spec, warm_k, warm_gmem);
        EXPECT_TRUE(kr.verified) << app << "/" << mix.label;
        sim::GpuConfig gpu = spec.gpu;
        if (warm_k.isGemm && spec.gemmIdealMapping)
            gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
        gpu.trace = &sink;
        sink.setTimeBase(base);
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        sim::RunStats stats = sim::runProgram(gpu, gmem, kr.compiled,
                                              k.grid, k.params);
        base += stats.cycles + 1000;
    }
    EXPECT_GT(sink.eventCount(), 0u);
    return sink.render();
}

} // namespace

TEST(TraceSchema, InProcessWaspTraceIsValid)
{
    std::string text =
        traceBenchmark("spmv1_g3", harness::PaperConfig::WaspGpu);
    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(text, doc, &err)) << err;
    validateTrace(doc, "spmv1_g3/wasp_gpu");
}

TEST(TraceSchema, InProcessBaselineTraceIsValid)
{
    // Baseline exercises the non-RFQ queue backend and never fires the
    // TMA tracks: a different event mix through the same schema.
    std::string text =
        traceBenchmark("gpt2", harness::PaperConfig::Baseline);
    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(text, doc, &err)) << err;
    validateTrace(doc, "gpt2/baseline");
}

TEST(TraceSchema, MultiKernelTimeBaseLaysKernelsEndToEnd)
{
    // gpt2 has several kernels; with setTimeBase between them no event
    // of kernel n+1 may start before kernel n's region.
    harness::ConfigSpec spec =
        harness::makeConfig(harness::PaperConfig::WaspGpu);
    TraceSink sink;
    uint64_t base = 0;
    std::vector<uint64_t> bases;
    const workloads::BenchmarkDef &bench = workloads::benchmark("gpt2");
    for (const workloads::KernelMix &mix : bench.kernels) {
        bases.push_back(base);
        mem::GlobalMemory warm_gmem;
        workloads::BuiltKernel warm_k = mix.build(warm_gmem);
        harness::KernelResult kr =
            harness::runKernel(spec, warm_k, warm_gmem);
        sim::GpuConfig gpu = spec.gpu;
        if (warm_k.isGemm && spec.gemmIdealMapping)
            gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
        gpu.trace = &sink;
        sink.setTimeBase(base);
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        sim::RunStats stats = sim::runProgram(gpu, gmem, kr.compiled,
                                              k.grid, k.params);
        base += stats.cycles + 1000;
    }
    ASSERT_GT(bases.size(), 1u);
    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(sink.render(), doc, &err)) << err;
    uint64_t max_ts = 0;
    for (const minijson::Value &e : doc["traceEvents"].array)
        if (e.has("ts"))
            max_ts = std::max(max_ts,
                              static_cast<uint64_t>(e["ts"].number));
    EXPECT_GE(max_ts, bases.back())
        << "no event landed in the last kernel's region";
}

TEST(TraceSchema, CommittedExampleTraceIsValid)
{
    // The repo ships examples/spmv1_g3_trace.json as the documented
    // chrome://tracing demo; this keeps it loadable as code evolves.
    std::ifstream in(WASP_TRACE_EXAMPLE);
    ASSERT_TRUE(in) << "cannot open " << WASP_TRACE_EXAMPLE;
    std::ostringstream os;
    os << in.rdbuf();
    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(os.str(), doc, &err)) << err;
    validateTrace(doc, "committed example");
    EXPECT_TRUE(doc.has("displayTimeUnit"));
}

TEST(TraceSchema, SinkPairsAsyncSpansAndDropsUnmatchedEnds)
{
    TraceSink sink;
    sink.processName(0, "chip");
    sink.threadName(0, 1, "track");
    sink.complete(0, 1, "outer", "test", 0, 8);
    uint64_t id = sink.asyncBegin(0, 1, "span", "test", 10);
    sink.asyncEnd(id, 20);
    sink.asyncEnd(id, 30);      // double-close: dropped
    sink.asyncEnd(12345, 40);   // never opened: dropped
    EXPECT_EQ(sink.eventCount(), 3u);
    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(sink.render(), doc, nullptr));
    validateTrace(doc, "async pairing");
}
