/**
 * @file
 * Golden-disassembly gate for the extract/partition/emit refactor.
 *
 * The Heuristic partition strategy must emit byte-identical programs
 * to the pre-refactor monolithic compiler. The committed fixture
 * (tests/golden/waspc_heuristic.txt) was generated from the compiler
 * as it stood before waspc.cc was split; this test recompiles every
 * benchmark kernel under all 16 {tile, streamGather, emitTma,
 * doubleBuffer} combinations and compares an FNV-1a hash of the
 * disassembly against the fixture, so any behavioural drift in the
 * refactored pipeline shows up as a named (bench/kernel, option-bits)
 * mismatch instead of a silent output change.
 *
 * Regeneration (only legitimate when intentionally changing emitted
 * code): WASP_GOLDEN_REGEN=/path/to/out.txt ctest -R GoldenDisasm
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "compiler/waspc.hh"
#include "isa/program.hh"
#include "mem/global_memory.hh"
#include "workloads/benchmarks.hh"

namespace
{

using namespace wasp;

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** "bench/kernel bits" -> hash-of-disassembly for the whole sweep. */
std::map<std::string, std::string>
currentHashes()
{
    std::map<std::string, std::string> out;
    for (const auto &bench : workloads::suite()) {
        for (const auto &mix : bench.kernels) {
            mem::GlobalMemory gmem;
            workloads::BuiltKernel k = mix.build(gmem);
            for (int bits = 0; bits < 16; ++bits) {
                compiler::CompileOptions copts;
                copts.tile = bits & 1;
                copts.streamGather = bits & 2;
                copts.emitTma = bits & 4;
                copts.doubleBuffer = bits & 8;
                compiler::CompileResult cr =
                    compiler::warpSpecialize(k.prog, copts);
                std::string key = bench.name + "/" + mix.label + " " +
                                  std::to_string(bits);
                out[key] = hex(fnv1a(isa::disassemble(cr.program)));
            }
        }
    }
    return out;
}

std::map<std::string, std::string>
loadFixture(const std::string &path)
{
    std::map<std::string, std::string> out;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        // "<bench/kernel> <bits> <hash>": hash is the last field.
        auto pos = line.rfind(' ');
        if (pos == std::string::npos)
            continue;
        out[line.substr(0, pos)] = line.substr(pos + 1);
    }
    return out;
}

TEST(GoldenDisasm, HeuristicMatchesPreRefactorCompiler)
{
    std::map<std::string, std::string> cur = currentHashes();

    if (const char *regen = std::getenv("WASP_GOLDEN_REGEN")) {
        std::ofstream out(regen);
        out << "# Golden disassembly hashes: FNV-1a over "
               "disassemble(warpSpecialize(prog, opts).program)\n"
            << "# key = <bench>/<kernel> <option bits "
               "tile|streamGather<<1|emitTma<<2|doubleBuffer<<3>\n";
        for (const auto &[key, hash] : cur)
            out << key << " " << hash << "\n";
        ASSERT_TRUE(out.good()) << "failed writing " << regen;
        GTEST_SKIP() << "regenerated fixture at " << regen;
    }

    std::map<std::string, std::string> want = loadFixture(WASP_GOLDEN_FILE);
    ASSERT_FALSE(want.empty())
        << "missing or empty fixture " << WASP_GOLDEN_FILE;
    ASSERT_EQ(want.size(), cur.size())
        << "sweep shape changed: fixture has " << want.size()
        << " entries, current compiler produced " << cur.size();
    int mismatches = 0;
    for (const auto &[key, hash] : want) {
        auto it = cur.find(key);
        ASSERT_NE(it, cur.end()) << "missing sweep cell " << key;
        if (it->second != hash) {
            ++mismatches;
            ADD_FAILURE() << key << ": emitted program changed (golden "
                          << hash << ", got " << it->second << ")";
        }
    }
    EXPECT_EQ(mismatches, 0)
        << mismatches << " of " << want.size()
        << " (benchmark-kernel, option-set) cells drifted from the "
           "pre-refactor compiler output";
}

} // namespace
