/**
 * @file
 * Cycle-accounting and machine-readable-export tests: the Distribution
 * stat type, the closed StallReason slot accounting (conservation over
 * the full Table II suite), and the canonical RunStats JSON schema.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "harness/configs.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "mem/global_memory.hh"
#include "sim/gpu.hh"
#include "sim/stall.hh"
#include "sim/stats_io.hh"
#include "workloads/benchmarks.hh"

#include "mini_json.hh"

using namespace wasp;
using namespace wasp::sim;

TEST(Distribution, EmptyStateIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Distribution, SamplesTrackMinMaxMeanAndBuckets)
{
    Distribution d(8);
    d.sample(2);
    d.sample(5);
    d.sample(2);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.sum(), 9u);
    EXPECT_EQ(d.min(), 2u);
    EXPECT_EQ(d.max(), 5u);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
    ASSERT_EQ(d.buckets().size(), 8u);
    EXPECT_EQ(d.buckets()[2], 2u);
    EXPECT_EQ(d.buckets()[5], 1u);
}

TEST(Distribution, OutOfRangeSamplesClampIntoLastBucket)
{
    Distribution d(4);
    d.sample(100);
    EXPECT_EQ(d.buckets()[3], 1u);
    // min/max/mean stay exact even though the histogram clamps.
    EXPECT_EQ(d.max(), 100u);
    EXPECT_EQ(d.sum(), 100u);
}

TEST(Distribution, ConfigureGrowsButNeverShrinks)
{
    Distribution d(4);
    d.configure(8);
    EXPECT_EQ(d.buckets().size(), 8u);
    d.configure(2);
    EXPECT_EQ(d.buckets().size(), 8u);
}

TEST(Distribution, MergeAccumulatesAndEqualityIsExact)
{
    Distribution a(4), b(4), whole(4);
    a.sample(1);
    a.sample(3);
    b.sample(0);
    whole.sample(1);
    whole.sample(3);
    whole.sample(0);
    EXPECT_NE(a, whole);
    a.merge(b);
    EXPECT_EQ(a, whole);
    EXPECT_EQ(a.min(), 0u);
    EXPECT_EQ(a.max(), 3u);
    EXPECT_EQ(a.count(), 3u);
}

TEST(StallReason, NamesAreClosedAndUnique)
{
    std::vector<std::string> seen;
    for (size_t r = 0; r < kNumStallReasons; ++r) {
        std::string name = stallReasonName(static_cast<StallReason>(r));
        EXPECT_FALSE(name.empty());
        for (const auto &prior : seen)
            EXPECT_NE(name, prior) << "duplicate reason name";
        seen.push_back(name);
    }
}

TEST(JsonWriter, EscapesAndNests)
{
    JsonWriter w;
    w.beginObject()
        .key("s").value("a\"b\\c\nd")
        .key("arr").beginArray().value(1).value(true).null().endArray()
        .endObject();
    minijson::Value v;
    std::string err;
    ASSERT_TRUE(minijson::parse(w.str(), v, &err)) << err;
    EXPECT_EQ(v["s"].str, "a\"b\\c\nd");
    ASSERT_EQ(v["arr"].array.size(), 3u);
    EXPECT_EQ(v["arr"].array[0].number, 1.0);
    EXPECT_TRUE(v["arr"].array[1].boolean);
}

namespace
{

/** Every (kernel, stats) pair of one benchmark under one config. */
std::vector<std::pair<std::string, RunStats>>
runAllKernels(const harness::ConfigSpec &spec, const std::string &app)
{
    std::vector<std::pair<std::string, RunStats>> out;
    const workloads::BenchmarkDef &bench = workloads::benchmark(app);
    for (const workloads::KernelMix &mix : bench.kernels) {
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        harness::KernelResult kr = harness::runKernel(spec, k, gmem);
        EXPECT_TRUE(kr.verified) << app << "/" << mix.label;
        out.emplace_back(app + "/" + mix.label, std::move(kr.stats));
    }
    return out;
}

/**
 * The accounting-conservation contract for one finished run: every
 * issue slot of every simulated cycle lands in exactly one StallReason
 * bucket, per SM and in aggregate, and Issued slots correspond 1:1 to
 * dynamic instructions.
 */
void
expectConservation(const RunStats &s, const sim::GpuConfig &gpu,
                   const std::string &what)
{
    uint64_t slots_per_cycle = static_cast<uint64_t>(gpu.numSms) *
                               static_cast<uint64_t>(gpu.pbsPerSm);
    EXPECT_EQ(s.issueSlotTotal(), s.cycles * slots_per_cycle) << what;
    EXPECT_EQ(s.stallCycles[static_cast<size_t>(StallReason::Issued)],
              s.totalDynInstrs())
        << what;
    // Ready and NoStack are dump-only classifications: a ready warp
    // always issues (the slot counts as Issued) and stack-less warps
    // are normalized to done before the scan.
    EXPECT_EQ(s.stallCycles[static_cast<size_t>(StallReason::Ready)], 0u)
        << what;
    EXPECT_EQ(s.stallCycles[static_cast<size_t>(StallReason::NoStack)],
              0u)
        << what;
    // Per-stage issue counts partition the issued slots.
    uint64_t stage_sum = 0;
    for (uint64_t v : s.stageIssues)
        stage_sum += v;
    EXPECT_EQ(stage_sum, s.totalDynInstrs()) << what;

    // Per-SM: the "sm<k>.stall.*" detail counters partition that SM's
    // slots, and summing them across SMs reproduces the aggregate.
    uint64_t detail_sum = 0;
    for (int k = 0; k < gpu.numSms; ++k) {
        std::string prefix = "sm" + std::to_string(k) + ".stall.";
        uint64_t sm_sum = 0;
        for (const auto &[name, c] : s.detail.all())
            if (name.rfind(prefix, 0) == 0)
                sm_sum += c.value();
        EXPECT_EQ(sm_sum,
                  s.cycles * static_cast<uint64_t>(gpu.pbsPerSm))
            << what << " sm " << k;
        detail_sum += sm_sum;
    }
    EXPECT_EQ(detail_sum, s.issueSlotTotal()) << what;
}

} // namespace

TEST(Accounting, ConservationHoldsAcrossFullSuite)
{
    harness::ConfigSpec spec =
        harness::makeConfig(harness::PaperConfig::WaspGpu);
    for (const workloads::BenchmarkDef &bench : workloads::suite())
        for (auto &[what, stats] : runAllKernels(spec, bench.name))
            expectConservation(stats, spec.gpu, what);
}

TEST(Accounting, ConservationHoldsOnBaselineConfig)
{
    // The baseline config exercises the non-RFQ queue backend and the
    // plain scheduler — classification paths WaspGpu never reaches.
    harness::ConfigSpec spec =
        harness::makeConfig(harness::PaperConfig::Baseline);
    for (const std::string &app :
         {std::string("gpt2"), std::string("spmv1_g3"),
          std::string("lonestar_bfs")})
        for (auto &[what, stats] : runAllKernels(spec, app))
            expectConservation(stats, spec.gpu, what);
}

TEST(Accounting, RfqOccupancyDistributionIsSampledUnderWasp)
{
    harness::ConfigSpec spec =
        harness::makeConfig(harness::PaperConfig::WaspGpu);
    bool sampled = false;
    for (auto &[what, stats] : runAllKernels(spec, "gpt2")) {
        for (const auto &[name, d] : stats.detail.dists()) {
            if (name.find("rfq.occupancy") == std::string::npos)
                continue;
            sampled = true;
            EXPECT_GT(d.count(), 0u) << what << " " << name;
            EXPECT_GE(d.min(), 1u)
                << what << " " << name
                << ": reserve samples post-increment, so 0 is impossible";
        }
    }
    EXPECT_TRUE(sampled) << "no RFQ occupancy distribution recorded";
}

TEST(StatsJson, SchemaParsesAndMatchesAccounting)
{
    harness::ConfigSpec spec =
        harness::makeConfig(harness::PaperConfig::WaspGpu);
    for (auto &[what, stats] : runAllKernels(spec, "gpt2")) {
        std::string text = runStatsJson(stats);
        minijson::Value v;
        std::string err;
        ASSERT_TRUE(minijson::parse(text, v, &err)) << what << ": " << err;
        ASSERT_TRUE(v.isObject()) << what;
        for (const char *key :
             {"cycles", "outcome", "dynInstrs", "totalDynInstrs",
              "memory", "occupancy", "issueSlots", "stageIssues",
              "detail", "timeline"})
            EXPECT_TRUE(v.has(key)) << what << " missing " << key;
        EXPECT_EQ(static_cast<uint64_t>(v["cycles"].number),
                  stats.cycles)
            << what;
        const minijson::Value &slots = v["issueSlots"];
        ASSERT_TRUE(slots.isObject()) << what;
        // Every StallReason appears (zeros included) and the buckets
        // sum to the advertised total.
        double stall_sum = 0.0;
        ASSERT_EQ(slots["stall"].object.size(), kNumStallReasons)
            << what;
        for (size_t r = 0; r < kNumStallReasons; ++r) {
            std::string name =
                stallReasonName(static_cast<StallReason>(r));
            ASSERT_TRUE(slots["stall"].has(name)) << what << " " << name;
            stall_sum += slots["stall"][name].number;
        }
        EXPECT_EQ(static_cast<uint64_t>(stall_sum),
                  static_cast<uint64_t>(slots["total"].number))
            << what;
        EXPECT_EQ(static_cast<uint64_t>(
                      slots["stall"]["issued"].number),
                  stats.totalDynInstrs())
            << what;
    }
}

TEST(StatsJson, MatrixReportJsonParsesWithStallBreakdown)
{
    std::vector<harness::ConfigSpec> specs = {
        harness::makeConfig(harness::PaperConfig::Baseline),
        harness::makeConfig(harness::PaperConfig::WaspGpu)};
    std::vector<std::string> apps = {"gpt2", "spmv1_g3"};
    std::vector<harness::BenchResult> results =
        harness::runMatrix(specs, apps, 1);
    std::vector<std::string> config_names;
    for (const auto &s : specs)
        config_names.push_back(s.name);
    harness::MatrixReport report(apps, config_names);
    for (const auto &r : results)
        report.add(r);
    minijson::Value v;
    std::string err;
    ASSERT_TRUE(minijson::parse(report.renderJson(), v, &err)) << err;
    ASSERT_EQ(v["cells"].array.size(), results.size());
    for (const minijson::Value &cell : v["cells"].array) {
        EXPECT_TRUE(cell.has("benchmark"));
        EXPECT_TRUE(cell.has("weightedCycles"));
        ASSERT_TRUE(cell["stall"].isObject());
        EXPECT_EQ(cell["stall"].object.size(), kNumStallReasons);
        EXPECT_GT(cell["stall"]["issued"].number, 0.0);
    }
}
