/**
 * @file
 * Durable-harness suite: the crash-safe result cache (content
 * addressing, byte-identity of hits, corruption quarantine, gc), the
 * per-cell budget policies of the durable runMatrix, and
 * checkpoint/resume of interrupted cells — including the profitability
 * re-run phase inside runKernel.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include <gtest/gtest.h>

#include "clock_equiv.hh"
#include "common/serialize.hh"
#include "harness/report.hh"
#include "harness/result_cache.hh"
#include "harness/runner.hh"
#include "sim/snapshot.hh"
#include "workloads/benchmarks.hh"

using namespace wasp;
using namespace wasp::harness;

namespace
{

struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/wasp_rcache_XXXXXX";
        path = ::mkdtemp(tmpl);
    }
    ~TempDir()
    {
        std::string cmd = "rm -rf " + path;
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
};

/** The exact-equality contract for everything the figures consume. */
void
expectCellIdentical(const BenchResult &a, const BenchResult &b,
                    const std::string &what)
{
    EXPECT_EQ(a.benchmark, b.benchmark) << what;
    EXPECT_EQ(a.config, b.config) << what;
    EXPECT_EQ(a.seed, b.seed) << what;
    EXPECT_EQ(a.verified, b.verified) << what;
    EXPECT_EQ(a.outcome, b.outcome) << what;
    EXPECT_EQ(a.weightedCycles, b.weightedCycles) << what;
    for (size_t c = 0; c < a.dynInstrs.size(); ++c)
        EXPECT_EQ(a.dynInstrs[c], b.dynInstrs[c])
            << what << " category " << c;
    EXPECT_EQ(a.l2Utilization, b.l2Utilization) << what;
    EXPECT_EQ(a.dramUtilization, b.dramUtilization) << what;
    EXPECT_EQ(a.l1HitRate, b.l1HitRate) << what;
    for (size_t r = 0; r < a.stallCycles.size(); ++r)
        EXPECT_EQ(a.stallCycles[r], b.stallCycles[r])
            << what << " stall bucket " << r;
    ASSERT_EQ(a.kernelCycles.size(), b.kernelCycles.size()) << what;
    for (size_t i = 0; i < a.kernelCycles.size(); ++i) {
        EXPECT_EQ(a.kernelCycles[i].first, b.kernelCycles[i].first)
            << what;
        EXPECT_EQ(a.kernelCycles[i].second, b.kernelCycles[i].second)
            << what;
    }
    EXPECT_EQ(a.diagnosis, b.diagnosis) << what;
    EXPECT_EQ(a.attempts, b.attempts) << what;
}

std::vector<ConfigSpec>
testSpecs()
{
    return {makeConfig(PaperConfig::Baseline),
            makeConfig(PaperConfig::WaspGpu)};
}

const std::vector<std::string> kApps = {"pointnet"};

std::string
readAll(const std::string &path)
{
    std::string bytes;
    std::string err;
    EXPECT_TRUE(readFileBytes(path, &bytes, &err)) << path << ": " << err;
    return bytes;
}

bool
fileExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

} // namespace

TEST(CellCacheKey, StableAndDiscriminating)
{
    ConfigSpec base = makeConfig(PaperConfig::Baseline);
    ConfigSpec wasp = makeConfig(PaperConfig::WaspGpu);
    const auto &pointnet = workloads::benchmark("pointnet");
    const auto &hpcg = workloads::benchmark("hpcg");

    uint64_t k1 = cellCacheKey(base, pointnet);
    EXPECT_EQ(k1, cellCacheKey(base, pointnet)) << "key must be stable";
    EXPECT_NE(k1, cellCacheKey(wasp, pointnet))
        << "different config must change the key";
    EXPECT_NE(k1, cellCacheKey(base, hpcg))
        << "different benchmark must change the key";

    // Execution-strategy knobs proven observationally equivalent are
    // excluded from the semantic config hash: entries hit across them.
    ConfigSpec skew = base;
    skew.gpu.clockMode = sim::ClockMode::Reference;
    skew.gpu.smParallelism = 4;
    EXPECT_EQ(k1, cellCacheKey(skew, pointnet))
        << "clock mode / SM threading must not change the key";

    // Result-bearing knobs must change it.
    ConfigSpec bigger = base;
    bigger.gpu.l2Bytes *= 2;
    EXPECT_NE(k1, cellCacheKey(bigger, pointnet));
}

TEST(ResultCache, StoreLookupRoundtripIsBitIdentical)
{
    TempDir tmp;
    ResultCache cache(tmp.path);
    ConfigSpec spec = makeConfig(PaperConfig::WaspGpu);
    const auto &bench = workloads::benchmark("pointnet");
    BenchResult computed = runBenchmark(spec, bench);
    uint64_t key = cellCacheKey(spec, bench);

    BenchResult miss;
    EXPECT_FALSE(cache.lookup(key, &miss)) << "empty cache must miss";

    std::string err;
    ASSERT_TRUE(cache.store(key, computed, &err)) << err;
    BenchResult hit;
    ASSERT_TRUE(cache.lookup(key, &hit));
    expectCellIdentical(computed, hit, "cached vs computed");

    // Publishing the same result twice must produce byte-identical
    // entries: the on-disk encoding is canonical.
    std::string first = readAll(cache.entryPath(key));
    ASSERT_TRUE(cache.store(key, computed, &err)) << err;
    EXPECT_EQ(first, readAll(cache.entryPath(key)));

    ResultCache::Stats st = cache.stats();
    EXPECT_EQ(st.entries, 1u);
    EXPECT_GT(st.bytes, 0u);
    EXPECT_EQ(st.corruptFiles, 0u);
    EXPECT_EQ(cache.verify(nullptr), 0u);
}

TEST(ResultCache, EveryByteFlipIsAMissNeverACrash)
{
    TempDir tmp;
    ResultCache cache(tmp.path);
    ConfigSpec spec = makeConfig(PaperConfig::Baseline);
    const auto &bench = workloads::benchmark("pointnet");
    BenchResult computed = runBenchmark(spec, bench);
    uint64_t key = cellCacheKey(spec, bench);
    std::string err;
    ASSERT_TRUE(cache.store(key, computed, &err)) << err;
    std::string path = cache.entryPath(key);
    const std::string good = readAll(path);

    // Every single-byte corruption — header, payload, or checksum
    // trailer — must be detected (the FNV trailer covers the whole
    // container), quarantined, and reported as a miss. Never a crash,
    // never a wrong result served.
    for (size_t off = 0; off < good.size(); ++off) {
        std::string bad = good;
        bad[off] = static_cast<char>(bad[off] ^ 0x5a);
        ASSERT_TRUE(writeFileAtomic(path, bad, &err)) << err;
        BenchResult out;
        EXPECT_FALSE(cache.lookup(key, &out)) << "offset " << off;
        EXPECT_FALSE(fileExists(path))
            << "corrupt entry must be quarantined, offset " << off;
        ::unlink((path + ".corrupt").c_str());
    }
    // Truncations at every length classify as structured misses too.
    for (size_t len = 0; len < good.size(); len += 7) {
        ASSERT_TRUE(writeFileAtomic(path, good.substr(0, len), &err))
            << err;
        BenchResult out;
        EXPECT_FALSE(cache.lookup(key, &out)) << "length " << len;
        ::unlink((path + ".corrupt").c_str());
    }
    // And a pristine entry still hits afterwards.
    ASSERT_TRUE(writeFileAtomic(path, good, &err)) << err;
    BenchResult out;
    EXPECT_TRUE(cache.lookup(key, &out));
}

TEST(ResultCache, VerifyQuarantinesAndGcEvictsOldestFirst)
{
    TempDir tmp;
    ResultCache cache(tmp.path);
    // Three fake-but-valid entries with controlled ages.
    ConfigSpec spec = makeConfig(PaperConfig::Baseline);
    const auto &bench = workloads::benchmark("pointnet");
    BenchResult r = runBenchmark(spec, bench);
    std::string err;
    ASSERT_TRUE(cache.store(1, r, &err)) << err;
    ASSERT_TRUE(cache.store(2, r, &err)) << err;
    ASSERT_TRUE(cache.store(3, r, &err)) << err;

    // Hand-corrupt entry 2; verify must quarantine exactly it.
    std::string p2 = cache.entryPath(2);
    std::string bytes = readAll(p2);
    bytes[bytes.size() / 2] ^= 0x40;
    ASSERT_TRUE(writeFileAtomic(p2, bytes, &err)) << err;
    std::vector<std::string> report;
    EXPECT_EQ(cache.verify(&report), 1u);
    EXPECT_EQ(report.size(), 1u);
    EXPECT_FALSE(fileExists(p2));
    EXPECT_TRUE(fileExists(p2 + ".corrupt"));
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().corruptFiles, 1u);

    // Age entry 1 into the past; gc to one entry's size must evict it
    // (oldest first) and reclaim the quarantined file.
    struct utimbuf old{};
    old.actime = 1000000;
    old.modtime = 1000000;
    ASSERT_EQ(::utime(cache.entryPath(1).c_str(), &old), 0);
    uint64_t one_entry = readAll(cache.entryPath(3)).size();
    size_t removed = cache.gc(one_entry);
    EXPECT_EQ(removed, 2u) << "entry 1 and the .corrupt file";
    EXPECT_FALSE(fileExists(cache.entryPath(1)));
    EXPECT_TRUE(fileExists(cache.entryPath(3)));
    EXPECT_FALSE(fileExists(p2 + ".corrupt"));
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(DurableMatrix, CacheHitsAreByteIdenticalToRecomputation)
{
    TempDir tmp;
    std::vector<ConfigSpec> specs = testSpecs();

    // Reference: the plain (cache-less) matrix.
    std::vector<BenchResult> clean = runMatrix(specs, kApps, 1);

    MatrixOptions opts;
    opts.jobs = 2;
    opts.cacheDir = tmp.path;
    std::vector<BenchResult> first = runMatrix(specs, kApps, opts);
    std::vector<BenchResult> second = runMatrix(specs, kApps, opts);

    ASSERT_EQ(first.size(), clean.size());
    ASSERT_EQ(second.size(), clean.size());
    for (size_t i = 0; i < clean.size(); ++i) {
        EXPECT_EQ(clean[i].provenance, "computed");
        EXPECT_EQ(first[i].provenance, "computed");
        EXPECT_EQ(second[i].provenance, "cached");
        expectCellIdentical(clean[i], first[i], "first vs clean");
        expectCellIdentical(clean[i], second[i], "cached vs clean");
    }

    // The JSON report carries provenance; everything else is
    // byte-identical between the computed and cached runs.
    MatrixReport rep1(kApps, {specs[0].name, specs[1].name});
    MatrixReport rep2(kApps, {specs[0].name, specs[1].name});
    for (const auto &cell : first)
        rep1.add(cell);
    for (const auto &cell : second)
        rep2.add(cell);
    std::string j1 = rep1.renderJson();
    std::string j2 = rep2.renderJson();
    EXPECT_NE(j1.find("\"provenance\":\"computed\""), std::string::npos);
    EXPECT_NE(j2.find("\"provenance\":\"cached\""), std::string::npos);
    auto strip = [](std::string s, const char *from) {
        for (size_t p; (p = s.find(from)) != std::string::npos;)
            s.erase(p, std::strlen(from));
        return s;
    };
    EXPECT_EQ(strip(j1, "\"provenance\":\"computed\","),
              strip(j2, "\"provenance\":\"cached\","));
}

TEST(DurableMatrix, CorruptEntryIsTransparentlyRecomputed)
{
    TempDir tmp;
    std::vector<ConfigSpec> specs = {makeConfig(PaperConfig::Baseline)};
    MatrixOptions opts;
    opts.jobs = 1;
    opts.cacheDir = tmp.path;
    std::vector<BenchResult> first = runMatrix(specs, kApps, opts);
    ASSERT_EQ(first.size(), 1u);

    // Corrupt the stored entry; the next run must detect it, recompute
    // (not crash, not serve garbage), and re-publish a valid entry.
    ResultCache cache(tmp.path);
    uint64_t key =
        cellCacheKey(specs[0], workloads::benchmark(kApps[0]));
    std::string path = cache.entryPath(key);
    std::string bytes = readAll(path);
    bytes[bytes.size() / 2] ^= 0x01;
    std::string err;
    ASSERT_TRUE(writeFileAtomic(path, bytes, &err)) << err;

    std::vector<BenchResult> second = runMatrix(specs, kApps, opts);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].provenance, "computed");
    expectCellIdentical(first[0], second[0], "recomputed vs original");
    EXPECT_EQ(ResultCache(tmp.path).verify(nullptr), 0u)
        << "the re-published entry must be valid";
}

TEST(DurableMatrix, BudgetSkipAndRetryPolicies)
{
    std::vector<ConfigSpec> specs = {makeConfig(PaperConfig::Baseline)};
    MatrixOptions opts;
    opts.jobs = 1;
    opts.budget.cycles = 300; // far below any pointnet kernel
    std::vector<BenchResult> skip = runMatrix(specs, kApps, opts);
    ASSERT_EQ(skip.size(), 1u);
    EXPECT_EQ(skip[0].outcome, sim::RunOutcome::BudgetExceeded);
    EXPECT_EQ(skip[0].attempts, 1);
    EXPECT_NE(skip[0].diagnosis.find("exceeded its cycle budget"),
              std::string::npos)
        << skip[0].diagnosis;

    // A deterministic cycle ceiling reproduces on retry.
    opts.onBudget = BudgetPolicy::Retry;
    std::vector<BenchResult> retry = runMatrix(specs, kApps, opts);
    ASSERT_EQ(retry.size(), 1u);
    EXPECT_EQ(retry[0].outcome, sim::RunOutcome::BudgetExceeded);
    EXPECT_EQ(retry[0].attempts, 2);
    EXPECT_NE(retry[0].diagnosis.find("reproduced on retry"),
              std::string::npos);

    // Checkpoint policy without a cache directory degrades gracefully.
    opts.onBudget = BudgetPolicy::Checkpoint;
    std::vector<BenchResult> nock = runMatrix(specs, kApps, opts);
    ASSERT_EQ(nock.size(), 1u);
    EXPECT_EQ(nock[0].outcome, sim::RunOutcome::BudgetExceeded);
    EXPECT_NE(nock[0].diagnosis.find("checkpoint not persisted"),
              std::string::npos);
}

TEST(DurableMatrix, CheckpointedCellsResumeBitIdentical)
{
    TempDir tmp;
    std::vector<ConfigSpec> specs = testSpecs();
    std::vector<BenchResult> clean = runMatrix(specs, kApps, 1);

    MatrixOptions opts;
    opts.jobs = 1;
    opts.cacheDir = tmp.path;
    opts.budget.cycles = 300;
    opts.onBudget = BudgetPolicy::Checkpoint;
    std::vector<BenchResult> tripped = runMatrix(specs, kApps, opts);
    ASSERT_EQ(tripped.size(), clean.size());
    size_t checkpoints = 0;
    for (const auto &cell : tripped) {
        EXPECT_EQ(cell.outcome, sim::RunOutcome::BudgetExceeded);
        if (cell.diagnosis.find("resumable checkpoint written") !=
            std::string::npos)
            ++checkpoints;
    }
    EXPECT_EQ(checkpoints, tripped.size());

    // Resume continues each cell exactly where it stopped and runs it
    // to completion (the tripped ceiling is not re-applied), so one
    // resume invocation converges — bit-identical to the run that was
    // never interrupted.
    opts.resume = true;
    std::vector<BenchResult> resumed = runMatrix(specs, kApps, opts);
    ASSERT_EQ(resumed.size(), clean.size());
    for (size_t i = 0; i < clean.size(); ++i) {
        EXPECT_EQ(resumed[i].provenance, "resumed");
        expectCellIdentical(clean[i], resumed[i], "resumed vs clean");
    }

    // Checkpoints are consumed; the cells are now cached.
    std::vector<BenchResult> again = runMatrix(specs, kApps, opts);
    for (size_t i = 0; i < clean.size(); ++i) {
        EXPECT_EQ(again[i].provenance, "cached");
        expectCellIdentical(clean[i], again[i], "cached vs clean");
    }
}

TEST(DurableMatrix, StaleOrCorruptCheckpointIsIgnored)
{
    TempDir tmp;
    std::vector<ConfigSpec> specs = {makeConfig(PaperConfig::Baseline)};
    std::vector<BenchResult> clean = runMatrix(specs, kApps, 1);

    // Plant garbage where the cell's checkpoint would live.
    uint64_t key =
        cellCacheKey(specs[0], workloads::benchmark(kApps[0]));
    std::string ckdir = tmp.path + "/checkpoints";
    std::string err;
    ASSERT_TRUE(ensureDir(ckdir, &err)) << err;
    char name[64];
    std::snprintf(name, sizeof name, "/%016llx.wckp",
                  static_cast<unsigned long long>(key));
    ASSERT_TRUE(writeFileAtomic(ckdir + name,
                                "not a checkpoint at all", &err))
        << err;

    MatrixOptions opts;
    opts.jobs = 1;
    opts.cacheDir = tmp.path;
    opts.resume = true;
    std::vector<BenchResult> out = runMatrix(specs, kApps, opts);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].provenance, "computed")
        << "garbage checkpoint must be ignored, cell recomputed";
    expectCellIdentical(clean[0], out[0], "recomputed vs clean");
}

TEST(DurableKernel, ProfitabilityRerunPhaseResumesBitIdentical)
{
    // Find a kernel whose warp specialization is kept (the transformed
    // main run beat the raw program), so runKernel's second simulation
    // — the profitability re-run — is strictly longer than the first
    // and a cycle ceiling equal to the main run's length interrupts
    // phase 1 specifically.
    ConfigSpec spec = makeConfig(PaperConfig::CompilerAll);
    bool exercised = false;
    for (const char *app : {"pointnet", "hpcg", "spmv1_g3"}) {
        const auto &bench = workloads::benchmark(app);
        for (const auto &mix : bench.kernels) {
            if (exercised)
                break;
            mem::GlobalMemory gmem;
            workloads::BuiltKernel k = mix.build(gmem);
            if (k.isGemm)
                continue;
            KernelResult clean = runKernel(spec, k, gmem);
            if (!clean.creport.transformed)
                continue;
            uint64_t main_cycles = clean.stats.cycles;
            mem::GlobalMemory gmem_raw;
            workloads::BuiltKernel kraw = mix.build(gmem_raw);
            uint64_t raw_cycles =
                sim::runProgram(spec.gpu, gmem_raw, kraw.prog,
                                kraw.grid, kraw.params)
                    .cycles;
            if (raw_cycles <= main_cycles)
                continue; // ceiling below would interrupt phase 0

            sim::RunBudget budget;
            budget.maxCycles = main_cycles;
            mem::GlobalMemory gmem2;
            workloads::BuiltKernel k2 = mix.build(gmem2);
            KernelResume res;
            bool stopped = false;
            try {
                runKernel(spec, k2, gmem2, budget, nullptr);
            } catch (const KernelBudgetStop &stop) {
                stopped = true;
                EXPECT_EQ(stop.phase, 1)
                    << "the main run fits the ceiling exactly; the "
                       "longer raw re-run must be the one that trips";
                EXPECT_FALSE(stop.snapshot.empty());
                EXPECT_EQ(stop.mainStats.cycles, main_cycles);
                res.phase = stop.phase;
                res.snapshot = stop.snapshot;
                res.mainStats = stop.mainStats;
            }
            ASSERT_TRUE(stopped) << app << "/" << mix.label;

            mem::GlobalMemory gmem3;
            workloads::BuiltKernel k3 = mix.build(gmem3);
            KernelResult resumed =
                runKernel(spec, k3, gmem3, sim::RunBudget{}, &res);
            EXPECT_TRUE(resumed.verified);
            wasp::clocktest::expectStatsEqual(clean.stats, resumed.stats,
                                              "phase-1 resume");
            exercised = true;
        }
        if (exercised)
            break;
    }
    EXPECT_TRUE(exercised)
        << "no benchmark kernel kept its specialization; the phase-1 "
           "resume path was not exercised";
}
