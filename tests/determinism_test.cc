/**
 * @file
 * The guardrail that makes the parallel experiment harness
 * trustworthy: the same (app, config) cell must produce bit-identical
 * statistics whether it runs serially, twice in a row, or fanned out
 * across a thread pool — and the memoized benchmark cache must fill
 * each key exactly once under contention.
 */

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.hh"
#include "common/thread_pool.hh"
#include "harness/configs.hh"
#include "harness/runner.hh"

using namespace wasp;
using namespace wasp::harness;

namespace
{

/** The exact-equality contract: every statistic the figures consume. */
void
expectBitIdentical(const BenchResult &a, const BenchResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.weightedCycles, b.weightedCycles);
    for (size_t c = 0; c < a.dynInstrs.size(); ++c)
        EXPECT_EQ(a.dynInstrs[c], b.dynInstrs[c]) << "category " << c;
    EXPECT_EQ(a.l2Utilization, b.l2Utilization);
    EXPECT_EQ(a.dramUtilization, b.dramUtilization);
    for (size_t r = 0; r < a.stallCycles.size(); ++r)
        EXPECT_EQ(a.stallCycles[r], b.stallCycles[r])
            << "stall bucket "
            << sim::stallReasonName(static_cast<sim::StallReason>(r));
    EXPECT_EQ(a.l1HitRate, b.l1HitRate);
    ASSERT_EQ(a.kernelCycles.size(), b.kernelCycles.size());
    for (size_t i = 0; i < a.kernelCycles.size(); ++i) {
        EXPECT_EQ(a.kernelCycles[i].first, b.kernelCycles[i].first);
        EXPECT_EQ(a.kernelCycles[i].second, b.kernelCycles[i].second);
    }
}

const std::vector<std::string> kApps = {"pointnet", "hpcg", "spmv1_g3",
                                        "lonestar_bfs"};

std::vector<ConfigSpec>
testSpecs()
{
    return {makeConfig(PaperConfig::Baseline),
            makeConfig(PaperConfig::WaspGpu)};
}

} // namespace

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    for (auto &h : hits)
        h = 0;
    for (size_t i = 0; i < hits.size(); ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    for (int jobs : {1, 2, 4}) {
        std::vector<std::atomic<int>> hits(37);
        for (auto &h : hits)
            h = 0;
        parallelFor(jobs, hits.size(),
                    [&hits](size_t i) { ++hits[i]; });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
    }
}

TEST(ThreadPool, WaitRethrowsTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(Determinism, SerialRerunIsBitIdentical)
{
    ConfigSpec spec = makeConfig(PaperConfig::WaspGpu);
    const auto &bench = workloads::benchmark("pointnet");
    BenchResult first = runBenchmark(spec, bench);
    BenchResult second = runBenchmark(spec, bench);
    expectBitIdentical(first, second);
}

TEST(Determinism, PoolMatchesSerialAtAnyJobCount)
{
    std::vector<ConfigSpec> specs = testSpecs();

    // Reference: plain serial loop, no pool involved at all.
    std::vector<BenchResult> serial;
    for (const auto &spec : specs)
        for (const auto &app : kApps)
            serial.push_back(
                runBenchmark(spec, workloads::benchmark(app)));

    std::vector<BenchResult> pool1 = runMatrix(specs, kApps, 1);
    std::vector<BenchResult> pool4 = runMatrix(specs, kApps, 4);

    ASSERT_EQ(serial.size(), pool1.size());
    ASSERT_EQ(serial.size(), pool4.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        expectBitIdentical(serial[i], pool1[i]);
        expectBitIdentical(serial[i], pool4[i]);
    }
}

TEST(Determinism, SeedDependsOnlyOnCell)
{
    EXPECT_EQ(taskSeed("WASP_GPU", "pointnet"),
              taskSeed("WASP_GPU", "pointnet"));
    EXPECT_NE(taskSeed("WASP_GPU", "pointnet"),
              taskSeed("BASELINE", "pointnet"));
    EXPECT_NE(taskSeed("WASP_GPU", "pointnet"),
              taskSeed("WASP_GPU", "hpcg"));
    // The separator is part of the hash: ("ab", "c") != ("a", "bc").
    EXPECT_NE(taskSeed("ab", "c"), taskSeed("a", "bc"));
    // Results carry the seed of their cell.
    BenchResult r = runBenchmark(makeConfig(PaperConfig::Baseline),
                                 workloads::benchmark("pointnet"));
    EXPECT_EQ(r.seed, taskSeed("BASELINE", "pointnet"));
}

TEST(Determinism, CachedRunFillsEachKeyOnceUnderContention)
{
    // All threads hammer the same key: every caller must get the same
    // cached object (one fill), and the cells must match a fresh
    // serial run bit-for-bit.
    ConfigSpec spec = makeConfig(PaperConfig::Baseline);
    const std::string app = "spmv1_g3";
    std::vector<const BenchResult *> got(8, nullptr);
    parallelFor(4, got.size(), [&](size_t i) {
        got[i] = &wasp::bench::cachedRun(spec, app);
    });
    for (const auto *p : got)
        EXPECT_EQ(p, got[0]) << "cachedRun returned distinct objects";
    BenchResult fresh = runBenchmark(spec, workloads::benchmark(app));
    expectBitIdentical(*got[0], fresh);
}
