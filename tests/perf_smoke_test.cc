/**
 * @file
 * Perf smoke gate (ctest label perf-smoke, wired into tier1): the
 * cycle-skipping clock must not be slower than the reference clock on
 * a memory-stall-heavy workload, and the full-size 108-SM machine —
 * impractical under the per-cycle loop — must complete a benchmark
 * end-to-end. Wall-clock numbers are noisy on a shared 1-CPU host, so
 * each mode is timed as best-of-N; tools/run_perf.sh records the real
 * baseline in BENCH_sim_throughput.json.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <string>

#include "common/telemetry.hh"
#include "common/trace.hh"
#include "harness/configs.hh"
#include "harness/runner.hh"
#include "mem/global_memory.hh"
#include "sim/gpu.hh"
#include "workloads/benchmarks.hh"

using namespace wasp;
using namespace wasp::sim;

namespace
{

/**
 * Time `runProgram` under one clock mode: best (min) wall seconds over
 * `reps` runs, on freshly built inputs each rep. Returns the simulated
 * cycle count through `cycles` so callers can assert clock agreement.
 */
double
timeClock(const harness::ConfigSpec &spec, const std::string &app,
          ClockMode mode, int reps, uint64_t &cycles)
{
    using Clock = std::chrono::steady_clock;
    double best = std::numeric_limits<double>::infinity();
    const workloads::BenchmarkDef &bench = workloads::benchmark(app);
    for (int r = 0; r < reps; ++r) {
        double total = 0.0;
        uint64_t total_cycles = 0;
        for (const workloads::KernelMix &mix : bench.kernels) {
            harness::ConfigSpec s = spec;
            s.gpu.clockMode = mode;
            mem::GlobalMemory gmem;
            workloads::BuiltKernel k = mix.build(gmem);
            // runKernel compiles per config before simulating; the
            // compile cost is identical for both clocks, so it only
            // dilutes the measured gap, never flips its sign.
            auto t0 = Clock::now();
            harness::KernelResult kr = harness::runKernel(s, k, gmem);
            std::chrono::duration<double> dt = Clock::now() - t0;
            EXPECT_TRUE(kr.verified) << app << "/" << mix.label;
            total += dt.count();
            total_cycles += kr.stats.cycles;
        }
        best = std::min(best, total);
        cycles = total_cycles;
    }
    return best;
}

} // namespace

TEST(PerfSmoke, SkippingClockNotSlowerOnStallHeavyKernel)
{
    // spmv1_g3 is gather-dominated: under the 108-SM machine most SMs
    // idle on DRAM most cycles, the cycle-skipping clock's best case.
    // The real margin is >= 2x (BENCH_sim_throughput.json); asserting
    // only "not slower" (with 10% noise allowance) keeps the gate
    // flake-free on a loaded host.
    harness::ConfigSpec spec =
        harness::makeFullSizeConfig(harness::PaperConfig::Baseline);
    uint64_t ref_cycles = 0;
    uint64_t skip_cycles = 0;
    double ref_s =
        timeClock(spec, "spmv1_g3", ClockMode::Reference, 3, ref_cycles);
    double skip_s =
        timeClock(spec, "spmv1_g3", ClockMode::CycleSkip, 3, skip_cycles);
    EXPECT_EQ(ref_cycles, skip_cycles) << "clock modes disagree";
    EXPECT_LE(skip_s, ref_s * 1.10)
        << "cycle-skipping clock slower than reference: " << skip_s
        << "s vs " << ref_s << "s";
}

TEST(PerfSmoke, TracingOffHasNoCostAndTracingOnIsBitIdentical)
{
    // Tracing is opt-in via GpuConfig::trace; when the pointer is null
    // every hook is a single branch, so the traced and untraced runs
    // must produce bit-identical RunStats, and leaving tracing off must
    // not slow the simulator down. The generous 1.25x bound absorbs
    // shared-host noise — the hooks are the regression target, not the
    // scheduler.
    harness::ConfigSpec spec =
        harness::makeConfig(harness::PaperConfig::WaspGpu);
    const workloads::BenchmarkDef &bench = workloads::benchmark("gpt2");
    using Clock = std::chrono::steady_clock;
    double best_off = std::numeric_limits<double>::infinity();
    double best_on = std::numeric_limits<double>::infinity();
    for (int r = 0; r < 3; ++r) {
        for (int traced = 0; traced < 2; ++traced) {
            wasp::TraceSink sink;
            harness::ConfigSpec s = spec;
            if (traced)
                s.gpu.trace = &sink;
            double total = 0.0;
            for (const workloads::KernelMix &mix : bench.kernels) {
                mem::GlobalMemory gmem;
                workloads::BuiltKernel k = mix.build(gmem);
                auto t0 = Clock::now();
                harness::KernelResult kr =
                    harness::runKernel(s, k, gmem);
                std::chrono::duration<double> dt = Clock::now() - t0;
                total += dt.count();
                EXPECT_TRUE(kr.verified) << mix.label;
                if (traced) {
                    // Same build, untraced: stats must not shift.
                    harness::ConfigSpec off = spec;
                    mem::GlobalMemory gmem2;
                    workloads::BuiltKernel k2 = mix.build(gmem2);
                    harness::KernelResult kr2 =
                        harness::runKernel(off, k2, gmem2);
                    EXPECT_EQ(kr.stats.cycles, kr2.stats.cycles)
                        << mix.label;
                    EXPECT_EQ(kr.stats.stallCycles, kr2.stats.stallCycles)
                        << mix.label;
                    EXPECT_EQ(kr.stats.dynInstrs, kr2.stats.dynInstrs)
                        << mix.label;
                }
            }
            if (traced) {
                EXPECT_GT(sink.eventCount(), 0u);
                best_on = std::min(best_on, total);
            } else {
                best_off = std::min(best_off, total);
            }
        }
    }
    EXPECT_LE(best_off, best_on * 1.25)
        << "tracing-off run slower than tracing-on: the null-pointer "
           "guard is no longer free";
}

TEST(PerfSmoke, TelemetryOffHasNoCostAndTelemetryOnIsBitIdentical)
{
    // Telemetry follows the TraceSink contract: off by default, and
    // off is one relaxed atomic load per hook — so a telemetry-enabled
    // run must produce bit-identical RunStats, and leaving telemetry
    // off must not slow the toolchain down. Same 1.25x noise allowance
    // as the tracing gate: the enabled() guard is the regression
    // target, not the scheduler.
    telem::resetForTest();
    harness::ConfigSpec spec =
        harness::makeConfig(harness::PaperConfig::WaspGpu);
    const workloads::BenchmarkDef &bench = workloads::benchmark("gpt2");
    using Clock = std::chrono::steady_clock;
    double best_off = std::numeric_limits<double>::infinity();
    double best_on = std::numeric_limits<double>::infinity();
    for (int r = 0; r < 3; ++r) {
        for (int on = 0; on < 2; ++on) {
            telem::enable(on != 0);
            double total = 0.0;
            for (const workloads::KernelMix &mix : bench.kernels) {
                mem::GlobalMemory gmem;
                workloads::BuiltKernel k = mix.build(gmem);
                auto t0 = Clock::now();
                harness::KernelResult kr =
                    harness::runKernel(spec, k, gmem);
                std::chrono::duration<double> dt = Clock::now() - t0;
                total += dt.count();
                EXPECT_TRUE(kr.verified) << mix.label;
                if (on) {
                    // Same build with telemetry off: bit-identical.
                    telem::enable(false);
                    mem::GlobalMemory gmem2;
                    workloads::BuiltKernel k2 = mix.build(gmem2);
                    harness::KernelResult kr2 =
                        harness::runKernel(spec, k2, gmem2);
                    telem::enable(true);
                    EXPECT_EQ(kr.stats.cycles, kr2.stats.cycles)
                        << mix.label;
                    EXPECT_EQ(kr.stats.stallCycles, kr2.stats.stallCycles)
                        << mix.label;
                    EXPECT_EQ(kr.stats.dynInstrs, kr2.stats.dynInstrs)
                        << mix.label;
                }
            }
            if (on)
                best_on = std::min(best_on, total);
            else
                best_off = std::min(best_off, total);
        }
    }
    telem::enable(false);
    EXPECT_GT(telem::harvestSpans().size(), 0u)
        << "telemetry-on runs recorded no spans";
    telem::resetForTest();
    EXPECT_LE(best_off, best_on * 1.25)
        << "telemetry-off run slower than telemetry-on: the enabled() "
           "guard is no longer free";
}

TEST(PerfSmoke, FullSize108SmConfigCompletesBenchmark)
{
    // The headline demo of the clocking refactor: the 108-SM scaled
    // A100 runs a benchmark to a verified result inside the ctest
    // timeout, where the per-cycle loop made this impractical.
    harness::ConfigSpec spec =
        harness::makeFullSizeConfig(harness::PaperConfig::WaspGpu);
    EXPECT_EQ(spec.gpu.numSms, 108);
    const workloads::BenchmarkDef &bench =
        workloads::benchmark("lonestar_bfs");
    for (const workloads::KernelMix &mix : bench.kernels) {
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        harness::KernelResult kr = harness::runKernel(spec, k, gmem);
        EXPECT_TRUE(kr.verified) << mix.label;
        EXPECT_EQ(kr.stats.outcome, RunOutcome::Ok);
        EXPECT_GT(kr.stats.cycles, 0u);
    }
}
