/**
 * @file
 * WASP compiler tests: dataflow analysis, affine analysis, stage
 * extraction structure, and — most importantly — functional equivalence
 * of every transformed kernel with its original on the simulator.
 */

#include <gtest/gtest.h>

#include "compiler/affine.hh"
#include "compiler/dataflow.hh"
#include "compiler/waspc.hh"
#include "isa/builder.hh"
#include "sim/gpu.hh"
#include "workloads/kernels.hh"

using namespace wasp;
using namespace wasp::isa;
using namespace wasp::compiler;

namespace
{

sim::GpuConfig
waspHw()
{
    sim::GpuConfig config;
    config.numSms = 2;
    config.queueBackend = sim::QueueBackend::Rfq;
    config.regAlloc = sim::RegAllocPolicy::PerStage;
    config.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
    config.sched = sim::SchedPolicy::WaspCombined;
    config.waspTmaEnabled = true;
    config.maxCycles = 5'000'000;
    return config;
}

/** Run the kernel and check the output region against the reference. */
void
expectCorrect(const Program &prog, workloads::BuiltKernel &k,
              mem::GlobalMemory &gmem, const sim::GpuConfig &config,
              const char *what)
{
    // Clear the output region first so stale results can't pass.
    for (uint32_t i = 0; i < k.outWords; ++i)
        gmem.write32(k.outAddr + i * 4, 0xdeadbeef);
    sim::runProgram(config, gmem, prog, k.grid, k.params);
    int mismatches = 0;
    for (uint32_t i = 0; i < k.outWords; ++i) {
        if (gmem.read32(k.outAddr + i * 4) != k.expected[i])
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0) << what;
}

} // namespace

TEST(Dataflow, UseDefChainsFollowLoop)
{
    Program prog = assemble(R"(
.kernel ud
.tb 32
    MOV R0, 0
    MOV R1, 5
top:
    IADD R0, R0, R1
    ISETP.LT P0, R0, 100
    @P0 BRA top
    STG [R2], R0
    EXIT
)");
    Cfg cfg(prog);
    UseDef ud(prog, cfg);
    // The IADD (2) reads R0 from both the MOV (0) and itself (loop).
    auto defs = ud.defsReaching(2, 0);
    EXPECT_EQ(defs.size(), 2u);
    // The store reads R0 defined only by the IADD.
    auto store_defs = ud.defsReaching(5, 0);
    ASSERT_EQ(store_defs.size(), 1u);
    EXPECT_EQ(store_defs[0], 2);
    // Backslice of the store contains the whole accumulation chain.
    auto slice = ud.backslice(5);
    EXPECT_TRUE(slice.count(0));
    EXPECT_TRUE(slice.count(1));
    EXPECT_TRUE(slice.count(2));
    // The IADD is in a dependence cycle with itself.
    EXPECT_TRUE(ud.inCycle(2));
}

TEST(AffineAnalysis, DerivesStridedAddresses)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::streamTriad(gmem, 2, 8, 0);
    Cfg cfg(k.prog);
    AffineAnalysis aff(k.prog, cfg);
    ASSERT_TRUE(aff.hasCanonicalLoop());
    // R4 = a + tid*4 + cta*chunks*128: coefficient on tid is 4.
    Affine v = aff.valueAtLoop(4);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.cTid, 4);
    EXPECT_EQ(v.cParam.at(0), 1);
    auto step = aff.stepOf(4);
    ASSERT_TRUE(step.has_value());
    EXPECT_EQ(*step, 128);
    LoopBound bound = aff.tripCount();
    ASSERT_TRUE(bound.valid);
    EXPECT_TRUE(bound.trips.isConst());
    EXPECT_EQ(bound.trips.c0, 8);
}

TEST(WaspCompiler, StreamKernelBecomesTwoStages)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::streamTriad(gmem, 2, 8, 2);
    CompileOptions opts;
    opts.emitTma = false;
    CompileResult cr = warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    EXPECT_EQ(cr.report.numStages, 2);
    EXPECT_EQ(cr.report.extractedLoads, 2); // a[i] and b[i]
    EXPECT_EQ(cr.program.tb.queues.size(), 2u);
    EXPECT_EQ(cr.program.tb.numStages, 2);
    ASSERT_EQ(cr.program.tb.stageRegs.size(), 2u);
    // The memory stage needs fewer registers than the compute stage
    // needs uniform allocation (per-stage savings, Fig 7/16).
    EXPECT_LT(cr.program.tb.stageRegs[0], k.prog.numRegs);
    expectCorrect(cr.program, k, gmem, waspHw(), "stream 2-stage");
}

TEST(WaspCompiler, GatherKernelBecomesThreeStages)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k =
        workloads::gatherScale(gmem, 2, 8, 4096, 0, 1);
    CompileOptions opts;
    opts.emitTma = false;
    CompileResult cr = warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    EXPECT_EQ(cr.report.numStages, 3); // index stream, gather, compute
    EXPECT_EQ(cr.report.extractedLoads, 2);
    expectCorrect(cr.program, k, gmem, waspHw(), "gather 3-stage");
}

TEST(WaspCompiler, TmaCollapsesGatherToTwoStages)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k =
        workloads::gatherScale(gmem, 2, 8, 4096, 0, 1);
    CompileOptions opts;
    opts.emitTma = true;
    CompileResult cr = warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    EXPECT_EQ(cr.report.numStages, 2);
    EXPECT_EQ(cr.report.tmaGathers, 1);
    bool has_tma_gather = false;
    for (const auto &inst : cr.program.instrs)
        has_tma_gather |= inst.op == Opcode::TMA_GATHER;
    EXPECT_TRUE(has_tma_gather);
    expectCorrect(cr.program, k, gmem, waspHw(), "TMA gather");
}

TEST(WaspCompiler, TmaStreamsReplaceProducerLoop)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::streamTriad(gmem, 2, 8, 0);
    CompileOptions opts;
    opts.emitTma = true;
    CompileResult cr = warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    EXPECT_EQ(cr.report.tmaStreams, 2);
    int tma_count = 0;
    int producer_ldg = 0;
    for (const auto &inst : cr.program.instrs) {
        if (inst.op == Opcode::TMA_STREAM)
            ++tma_count;
        if (inst.op == Opcode::LDG &&
            !inst.dsts.empty() && inst.dsts[0].isQueue())
            ++producer_ldg;
    }
    EXPECT_EQ(tma_count, 2);
    EXPECT_EQ(producer_ldg, 0); // the loop-based producer is gone
    expectCorrect(cr.program, k, gmem, waspHw(), "TMA stream");
}

TEST(WaspCompiler, TileKernelUsesLdgstsAndArriveWaitBarriers)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::tileMma(gmem, 2, 8, 2);
    CompileOptions opts;
    opts.streamGather = false;
    opts.doubleBuffer = false;
    CompileResult cr = warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    EXPECT_TRUE(cr.report.tiled);
    EXPECT_FALSE(cr.report.doubleBuffered);
    EXPECT_EQ(cr.report.numStages, 2);
    int ldgsts = 0;
    int bar_sync = 0;
    int arrive = 0;
    int wait = 0;
    for (const auto &inst : cr.program.instrs) {
        if (inst.op == Opcode::LDGSTS)
            ++ldgsts;
        if (inst.op == Opcode::BAR_SYNC)
            ++bar_sync;
        if (inst.op == Opcode::BAR_ARRIVE)
            ++arrive;
        if (inst.op == Opcode::BAR_WAIT)
            ++wait;
    }
    EXPECT_EQ(ldgsts, 1);
    EXPECT_EQ(bar_sync, 0); // both rewritten per stage
    EXPECT_EQ(arrive, 2);
    EXPECT_EQ(wait, 2);
    EXPECT_EQ(cr.program.tb.barriers.size(), 2u);
    expectCorrect(cr.program, k, gmem, waspHw(), "tile single-buffer");
}

TEST(WaspCompiler, DoubleBufferingDoublesSmemAndBarriers)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::tileMma(gmem, 2, 8, 2);
    CompileOptions opts;
    opts.streamGather = false;
    opts.doubleBuffer = true;
    CompileResult cr = warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    EXPECT_TRUE(cr.report.doubleBuffered);
    EXPECT_EQ(cr.program.tb.smemBytes, k.prog.tb.smemBytes * 2);
    EXPECT_EQ(cr.program.tb.barriers.size(), 4u);
    expectCorrect(cr.program, k, gmem, waspHw(), "tile double-buffer");
}

TEST(WaspCompiler, SpmvExtractsIndirectionChain)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::spmvCsr(gmem, 2, 6, 1, 0);
    CompileOptions opts;
    opts.emitTma = false;
    CompileResult cr = warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    // col+val streams (level 0), x gather (level 1), compute.
    EXPECT_EQ(cr.report.numStages, 3);
    EXPECT_EQ(cr.report.extractedLoads, 3);
    expectCorrect(cr.program, k, gmem, waspHw(), "spmv chain");
}

TEST(WaspCompiler, PassthroughWhenNothingToExtract)
{
    KernelBuilder b("pure_compute");
    b.tbDim(32);
    b.s2r(0, SpecialReg::TID_X);
    b.imul(1, R(0), R(0));
    b.shl(2, R(0), Imm(2));
    b.iadd(2, R(2), CParam(0));
    b.stg(2, 0, R(1));
    b.exit();
    Program prog = b.finish();
    CompileResult cr = warpSpecialize(prog, CompileOptions{});
    EXPECT_FALSE(cr.report.transformed);
    EXPECT_EQ(cr.report.numStages, 1);
    EXPECT_EQ(cr.program.size(), prog.size());
}

TEST(WaspCompiler, PointerChaseIsNotExtracted)
{
    // p = load(p) in a loop: dependence cycle, must stay unspecialized.
    KernelBuilder b("chase");
    b.tbDim(32);
    b.s2r(0, SpecialReg::TID_X);
    b.shl(1, R(0), Imm(2));
    b.iadd(1, R(1), CParam(0));
    b.mov(2, Imm(0));
    auto loop = b.freshLabel("loop");
    b.place(loop);
    b.ldg(1, 1, 0);
    b.iadd(2, R(2), Imm(1));
    b.isetp(0, CmpOp::LT, R(2), Imm(4));
    b.pred(0).bra(loop);
    b.shl(3, R(0), Imm(2));
    b.iadd(3, R(3), CParam(1));
    b.stg(3, 0, R(1));
    b.exit();
    Program prog = b.finish();
    CompileResult cr = warpSpecialize(prog, CompileOptions{});
    EXPECT_FALSE(cr.report.transformed);
}

TEST(WaspCompiler, CompiledProgramsValidateAndDisassemble)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::stencil5(gmem, 2, 8);
    CompileOptions opts;
    opts.emitTma = true;
    CompileResult cr = warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    cr.program.validate();
    std::string text = disassemble(cr.program);
    Program again = assemble(text);
    EXPECT_EQ(again.size(), cr.program.size());
    EXPECT_EQ(again.tb.numStages, cr.program.tb.numStages);
}

TEST(WaspCompiler, StageRegistersAreSmallerThanUniform)
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::gatherScale(gmem, 2, 8, 4096,
                                                      0, 8);
    CompileResult cr = warpSpecialize(k.prog, CompileOptions{});
    ASSERT_TRUE(cr.report.transformed);
    int max_stage = 0;
    int sum_mem_stages = 0;
    for (size_t s = 0; s < cr.program.tb.stageRegs.size(); ++s) {
        max_stage = std::max(max_stage, cr.program.tb.stageRegs[s]);
        if (s + 1 < cr.program.tb.stageRegs.size())
            sum_mem_stages += cr.program.tb.stageRegs[s];
    }
    // Memory stages are much leaner than the compute stage (Fig 7).
    EXPECT_LT(cr.program.tb.stageRegs[0], max_stage);
}

TEST(WaspCompiler, ManyTmaStreamsWithTinyQueuesDoNotDeadlock)
{
    // Regression: five TMA stream descriptors per block with 8-entry
    // queues used to deadlock on a bounded global descriptor table.
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::stencil5(gmem, 12, 12);
    CompileOptions opts;
    opts.emitTma = true;
    CompileResult cr = warpSpecialize(k.prog, opts);
    ASSERT_TRUE(cr.report.transformed);
    EXPECT_EQ(cr.report.tmaStreams, 5);
    sim::GpuConfig config = waspHw();
    config.rfqEntries = 8;
    config.maxCycles = 3'000'000;
    expectCorrect(cr.program, k, gmem, config, "5-stream tiny queues");
}
