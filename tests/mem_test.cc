/**
 * @file
 * Unit tests for the memory subsystem: delay queues, functional global
 * memory, the timing cache (LRU, MSHR merging, blocking), DRAM
 * bandwidth shaping, the banked L2, and the SMEM bank-conflict model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/global_memory.hh"
#include "mem/l2.hh"
#include "mem/req.hh"
#include "mem/smem.hh"

using namespace wasp::mem;

TEST(DelayQueue, RespectsReadyCycle)
{
    DelayQueue<int> q;
    q.push(1, 10);
    q.push(2, 12);
    EXPECT_FALSE(q.ready(9));
    EXPECT_TRUE(q.ready(10));
    EXPECT_EQ(q.pop(), 1);
    EXPECT_FALSE(q.ready(10));
    EXPECT_TRUE(q.ready(12));
    EXPECT_EQ(q.pop(), 2);
    EXPECT_TRUE(q.empty());
}

TEST(GlobalMemory, ReadWriteRoundTrip)
{
    GlobalMemory gmem;
    uint32_t a = gmem.alloc(4096);
    EXPECT_EQ(a % 256u, 0u);
    gmem.write32(a + 8, 0xdeadbeef);
    EXPECT_EQ(gmem.read32(a + 8), 0xdeadbeefu);
    EXPECT_EQ(gmem.read32(a + 12), 0u); // untouched memory reads zero
    gmem.writeF32(a, 3.25f);
    EXPECT_FLOAT_EQ(gmem.readF32(a), 3.25f);
    // Cross-page access.
    gmem.write32(a + 4092, 7);
    EXPECT_EQ(gmem.read32(a + 4092), 7u);
}

TEST(GlobalMemory, AllocationsDoNotOverlap)
{
    GlobalMemory gmem;
    uint32_t a = gmem.alloc(100);
    uint32_t b = gmem.alloc(100);
    EXPECT_GE(b, a + 100);
    gmem.writeWords(a, {1, 2, 3});
    auto words = gmem.readWords(a, 3);
    EXPECT_EQ(words, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(TimingCache, HitAfterFill)
{
    TimingCache cache(1024, 4, 8);
    MshrWaiter w{ReqSource::Lsu, 0, 42};
    EXPECT_EQ(cache.access(0x100, w), CacheOutcome::Miss);
    auto waiters = cache.fill(0x100);
    ASSERT_EQ(waiters.size(), 1u);
    EXPECT_EQ(waiters[0].txn, 42u);
    EXPECT_EQ(cache.access(0x100, w), CacheOutcome::Hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(TimingCache, MshrMergesSameLine)
{
    TimingCache cache(1024, 4, 8);
    MshrWaiter w1{ReqSource::Lsu, 0, 1};
    MshrWaiter w2{ReqSource::Lsu, 0, 2};
    EXPECT_EQ(cache.access(0x200, w1), CacheOutcome::Miss);
    EXPECT_EQ(cache.access(0x200, w2), CacheOutcome::MissMerged);
    EXPECT_TRUE(cache.mshrPending(0x200));
    auto waiters = cache.fill(0x200);
    EXPECT_EQ(waiters.size(), 2u);
    EXPECT_FALSE(cache.mshrPending(0x200));
}

TEST(TimingCache, BlocksWhenMshrsExhausted)
{
    TimingCache cache(4096, 4, 2);
    MshrWaiter w{ReqSource::Lsu, 0, 0};
    EXPECT_EQ(cache.access(0x000, w), CacheOutcome::Miss);
    EXPECT_EQ(cache.access(0x400, w), CacheOutcome::Miss);
    EXPECT_EQ(cache.access(0x800, w), CacheOutcome::Blocked);
    cache.fill(0x000);
    EXPECT_EQ(cache.access(0x800, w), CacheOutcome::Miss);
}

TEST(TimingCache, LruEvictsOldestWay)
{
    // 2 ways, enough sets that these addresses map to one set: use a
    // tiny cache: 2 lines total -> 1 set x 2 ways.
    TimingCache cache(64, 2, 8);
    MshrWaiter w{ReqSource::Lsu, 0, 0};
    cache.insert(0x000);
    cache.insert(0x100);
    EXPECT_TRUE(cache.probe(0x000));
    // Touch 0x000 so 0x100 becomes LRU, then insert a third line.
    EXPECT_EQ(cache.access(0x000, w), CacheOutcome::Hit);
    cache.insert(0x200);
    EXPECT_TRUE(cache.probe(0x000));
    EXPECT_FALSE(cache.probe(0x100));
    EXPECT_TRUE(cache.probe(0x200));
}

TEST(Dram, BandwidthLimitsThroughput)
{
    Dram dram(16.0, 100, 64); // 16 B/cycle: one sector per 2 cycles
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(dram.inject(
            {static_cast<uint32_t>(i) * 32, false, ReqSource::Lsu, 0, 0}));
    int served = 0;
    for (uint64_t now = 0; now < 400; ++now) {
        dram.tick(now);
        while (dram.responses().ready(now)) {
            dram.responses().pop();
            ++served;
        }
    }
    EXPECT_EQ(served, 8);
    EXPECT_EQ(dram.bytesRead(), 8u * 32u);
    // 8 sectors at 16 B/cycle should take >= 16 cycles of service.
    Dram fast(1024.0, 100, 64);
    // (shape check only; precise timing covered via the L2 test below)
}

TEST(Dram, QueueDepthBackpressure)
{
    Dram dram(32.0, 10, 2);
    EXPECT_TRUE(dram.inject({0, false, ReqSource::Lsu, 0, 0}));
    EXPECT_TRUE(dram.inject({32, false, ReqSource::Lsu, 0, 0}));
    EXPECT_FALSE(dram.canAccept());
    EXPECT_FALSE(dram.inject({64, false, ReqSource::Lsu, 0, 0}));
}

TEST(L2Cache, MissGoesToDramAndFills)
{
    Dram dram(64.0, 20, 64);
    L2Params params;
    params.banks = 2;
    params.hitLatency = 10;
    L2Cache l2(params, dram);
    EXPECT_TRUE(l2.inject({0x40, false, ReqSource::Lsu, 3, 99}));
    int got = 0;
    MemReq resp{};
    for (uint64_t now = 0; now < 200; ++now) {
        l2.tick(now);
        dram.tick(now);
        while (l2.responses().ready(now)) {
            resp = l2.responses().pop();
            ++got;
        }
    }
    ASSERT_EQ(got, 1);
    EXPECT_EQ(resp.sm, 3);
    EXPECT_EQ(resp.txn, 99u);
    EXPECT_EQ(l2.misses(), 1u);
    // Second access to the same sector is now a hit.
    EXPECT_TRUE(l2.inject({0x40, false, ReqSource::Lsu, 3, 100}));
    for (uint64_t now = 200; now < 260; ++now) {
        l2.tick(now);
        dram.tick(now);
        while (l2.responses().ready(now))
            l2.responses().pop();
    }
    EXPECT_EQ(l2.hits(), 1u);
}

TEST(L2Cache, WritesAreWriteThroughAndPosted)
{
    Dram dram(64.0, 20, 64);
    L2Params params;
    L2Cache l2(params, dram);
    EXPECT_TRUE(l2.inject({0x80, true, ReqSource::Lsu, 0, 0}));
    for (uint64_t now = 0; now < 100; ++now) {
        l2.tick(now);
        dram.tick(now);
    }
    EXPECT_EQ(dram.bytesWritten(), 32u);
    EXPECT_TRUE(l2.responses().empty()); // no response for posted write
}

TEST(L2Cache, BankParallelismServesOnePerBankPerCycle)
{
    Dram dram(1024.0, 1, 1024);
    L2Params params;
    params.banks = 4;
    params.hitLatency = 1;
    L2Cache l2(params, dram);
    // Warm four sectors, one per bank.
    for (int i = 0; i < 4; ++i)
        l2.inject({static_cast<uint32_t>(i) * 32, false,
                   ReqSource::Lsu, 0, static_cast<uint32_t>(i)});
    for (uint64_t now = 0; now < 50; ++now) {
        l2.tick(now);
        dram.tick(now);
        while (l2.responses().ready(now))
            l2.responses().pop();
    }
    uint64_t bytes_before = l2.bytesAccessed();
    // Re-inject hits on all four banks; they should be served in the
    // same cycle (one per bank).
    for (int i = 0; i < 4; ++i)
        l2.inject({static_cast<uint32_t>(i) * 32, false,
                   ReqSource::Lsu, 0, static_cast<uint32_t>(10 + i)});
    l2.tick(100);
    EXPECT_EQ(l2.bytesAccessed() - bytes_before, 4u * 32u);
}

TEST(Smem, ConflictFreeAndBroadcastCostOneCycle)
{
    std::vector<uint32_t> unit_stride;
    for (uint32_t l = 0; l < 32; ++l)
        unit_stride.push_back(l * 4);
    EXPECT_EQ(smemConflictCycles(unit_stride), 1);
    std::vector<uint32_t> broadcast(32, 64);
    EXPECT_EQ(smemConflictCycles(broadcast), 1);
}

TEST(Smem, StrideTwoGivesTwoWayConflict)
{
    std::vector<uint32_t> stride2;
    for (uint32_t l = 0; l < 32; ++l)
        stride2.push_back(l * 8);
    EXPECT_EQ(smemConflictCycles(stride2), 2);
    std::vector<uint32_t> stride32;
    for (uint32_t l = 0; l < 32; ++l)
        stride32.push_back(l * 128);
    EXPECT_EQ(smemConflictCycles(stride32), 32);
}

TEST(Smem, StorageBoundsChecked)
{
    SmemStorage smem(256);
    smem.write32(252, 5);
    EXPECT_EQ(smem.read32(252), 5u);
    EXPECT_DEATH(smem.read32(256), "OOB");
}
