/**
 * @file
 * Pointnet++-style scenario (paper Fig. 3): a use-once gather feeding
 * TensorCore compute. Shows the alternating memory/compute phases on
 * the baseline versus WASP's overlapped execution, and the compiler's
 * gather-to-WASP-TMA collapse.
 *
 * Build & run:  ./build/examples/pointnet_gather
 */

#include <cstdio>

#include "harness/configs.hh"
#include "harness/runner.hh"
#include "workloads/kernels.hh"

using namespace wasp;
using namespace wasp::harness;

namespace
{

void
runAndReport(PaperConfig which)
{
    ConfigSpec spec = makeConfig(which);
    spec.gpu.timelineInterval = 512;
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k =
        workloads::gatherScale(gmem, 24, 24, 65536, 0, 8, true);
    KernelResult kr = runKernel(spec, k, gmem);
    printf("%-22s %8llu cycles  L2 util %4.0f%%  DRAM util %4.0f%%  "
           "stages=%d  verified=%s\n",
           spec.name.c_str(),
           static_cast<unsigned long long>(kr.stats.cycles),
           kr.stats.l2Utilization() * 100.0,
           kr.stats.dramUtilization() * 100.0, kr.creport.numStages,
           kr.verified ? "yes" : "NO");
    // Compact utilization sparkline per interval.
    auto spark = [](double util) {
        static const char *levels = " .:-=+*#%@";
        int idx = static_cast<int>(util * 9.0 + 0.5);
        return levels[std::min(idx, 9)];
    };
    printf("  tensor: ");
    for (const auto &sample : kr.stats.timeline)
        putchar(spark(sample.tensorUtil));
    printf("\n  l2-bw:  ");
    for (const auto &sample : kr.stats.timeline)
        putchar(spark(sample.l2Util));
    printf("\n\n");
}

} // namespace

int
main()
{
    printf("Pointnet-style gather + TensorCore kernel "
           "(paper Figs. 3 and 8c)\n\n");
    runAndReport(PaperConfig::Baseline);
    runAndReport(PaperConfig::CompilerAll);
    runAndReport(PaperConfig::WaspGpu);
    printf("Note how WASP sustains memory bandwidth (l2-bw) while the\n"
           "baseline alternates between memory and compute phases.\n");
    return 0;
}
