/**
 * @file
 * Design-space exploration with the public API: sweep the
 * pipeline-aware warp scheduling policies (paper Fig. 17) and RFQ sizes
 * (Fig. 18) on a sparse SpMV kernel.
 *
 * Build & run:  ./build/examples/explore_scheduling
 */

#include <cstdio>

#include "core/sched_policy.hh"
#include "harness/configs.hh"
#include "harness/runner.hh"
#include "workloads/kernels.hh"

using namespace wasp;
using namespace wasp::harness;

namespace
{

uint64_t
runWith(sim::SchedPolicy policy, int rfq_entries)
{
    ConfigSpec spec = makeConfig(PaperConfig::WaspGpu, 1.0, rfq_entries);
    spec.gpu.sched = policy;
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::spmvCsr(gmem, 48, 8, 1, 0);
    KernelResult kr = runKernel(spec, k, gmem);
    if (!kr.verified)
        printf("  WARNING: verification failed!\n");
    return kr.stats.cycles;
}

} // namespace

int
main()
{
    printf("SpMV (webbase-style skewed rows) on the WASP GPU\n\n");

    printf("Warp scheduling policies (32-entry RFQs):\n");
    uint64_t gto = runWith(sim::SchedPolicy::Gto, 32);
    for (auto policy :
         {sim::SchedPolicy::Gto, sim::SchedPolicy::ProducerFirst,
          sim::SchedPolicy::ConsumerFirst,
          sim::SchedPolicy::QueueFullFirst,
          sim::SchedPolicy::WaspCombined}) {
        uint64_t cycles = runWith(policy, 32);
        printf("  %-18s %8llu cycles  (%.2fx vs GTO)\n",
               core::schedPolicyName(policy),
               static_cast<unsigned long long>(cycles),
               static_cast<double>(gto) / static_cast<double>(cycles));
    }

    printf("\nRFQ size sweep (WASP combined policy):\n");
    uint64_t eight = runWith(sim::SchedPolicy::WaspCombined, 8);
    for (int entries : {8, 16, 32, 64}) {
        uint64_t cycles = runWith(sim::SchedPolicy::WaspCombined, entries);
        printf("  %2d entries %8llu cycles  (%.2fx vs 8 entries)\n",
               entries, static_cast<unsigned long long>(cycles),
               static_cast<double>(eight) /
                   static_cast<double>(cycles));
    }
    return 0;
}
