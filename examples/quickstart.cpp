/**
 * @file
 * Quickstart: write a WSASS kernel as text, automatically warp
 * specialize it with the WASP compiler, and run both versions on the
 * simulated GPU.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "compiler/waspc.hh"
#include "isa/program.hh"
#include "mem/global_memory.hh"
#include "sim/gpu.hh"

using namespace wasp;

int
main()
{
    // A simple streaming kernel: out[i] = in[i] * 3 + 1, with each
    // 32-thread block walking 16 warp-wide chunks.
    isa::Program prog = isa::assemble(R"(
.kernel scale_add
.tb 32
    S2R R0, SR_TID_X
    SHL R1, R0, 2
    S2R R2, SR_CTAID_X
    IMUL R3, R2, 2048        ; 16 chunks * 128 bytes
    IADD R1, R1, R3
    IADD R4, R1, c[0]        ; input pointer
    IADD R5, R1, c[1]        ; output pointer
    MOV R6, 0
loop:
    LDG R7, [R4]
    FMUL R8, R7, 3.0f
    FADD R8, R8, 1.0f
    STG [R5], R8
    IADD R4, R4, 128
    IADD R5, R5, 128
    IADD R6, R6, 1
    ISETP.LT P0, R6, 16
    @P0 BRA loop
    EXIT
)");

    // Place the data.
    mem::GlobalMemory gmem;
    const int blocks = 16;
    const int n = blocks * 16 * 32;
    uint32_t in = gmem.alloc(n * 4);
    uint32_t out = gmem.alloc(n * 4);
    for (int i = 0; i < n; ++i)
        gmem.writeF32(in + static_cast<uint32_t>(i) * 4,
                      static_cast<float>(i) * 0.25f);

    // Automatically warp specialize: the load stream is decoupled into
    // a producer stage feeding the compute stage through a register
    // file queue, then offloaded to WASP-TMA.
    compiler::CompileOptions opts;
    opts.emitTma = true;
    compiler::CompileResult cr = compiler::warpSpecialize(prog, opts);
    printf("compiler: %d stages, %d extracted loads, %d TMA streams\n\n",
           cr.report.numStages, cr.report.extractedLoads,
           cr.report.tmaStreams);
    printf("---- warp specialized WSASS ----\n%s\n",
           isa::disassemble(cr.program).c_str());

    // Run the original on a baseline GPU...
    sim::GpuConfig base_gpu;
    sim::RunStats base =
        sim::runProgram(base_gpu, gmem, prog, blocks, {in, out});

    // ...and the specialized version on a WASP GPU.
    sim::GpuConfig wasp_gpu;
    wasp_gpu.queueBackend = sim::QueueBackend::Rfq;
    wasp_gpu.regAlloc = sim::RegAllocPolicy::PerStage;
    wasp_gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
    wasp_gpu.sched = sim::SchedPolicy::WaspCombined;
    wasp_gpu.waspTmaEnabled = true;
    sim::RunStats wasp =
        sim::runProgram(wasp_gpu, gmem, cr.program, blocks, {in, out});

    // Verify the specialized kernel computed the same thing.
    int bad = 0;
    for (int i = 0; i < n; ++i) {
        float expect = static_cast<float>(i) * 0.25f * 3.0f + 1.0f;
        if (gmem.readF32(out + static_cast<uint32_t>(i) * 4) != expect)
            ++bad;
    }

    printf("baseline: %llu cycles\n",
           static_cast<unsigned long long>(base.cycles));
    printf("WASP:     %llu cycles  (%.2fx speedup)\n",
           static_cast<unsigned long long>(wasp.cycles),
           static_cast<double>(base.cycles) /
               static_cast<double>(wasp.cycles));
    printf("verification: %s\n", bad == 0 ? "PASS" : "FAIL");
    return bad == 0 ? 0 : 1;
}
