/**
 * @file
 * CUTLASS-style tile pipeline (paper Figs. 1, 10, 13): a GEMM mainloop
 * proxy that stages tiles through shared memory between BAR.SYNCs. The
 * WASP compiler fuses the transfer into LDGSTS, splits the kernel into
 * a memory stage and a compute stage connected by arrive/wait barriers,
 * and double-buffers the SMEM tile.
 *
 * Build & run:  ./build/examples/tiled_gemm
 */

#include <cstdio>

#include "compiler/waspc.hh"
#include "sim/gpu.hh"
#include "workloads/kernels.hh"

using namespace wasp;

int
main()
{
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = workloads::tileMma(gmem, 8, 16, 8);

    printf("---- original kernel (Fig. 1a pattern) ----\n%s\n",
           isa::disassemble(k.prog).c_str());

    compiler::CompileOptions opts;
    opts.streamGather = false; // coarse-grained tiles only
    opts.doubleBuffer = true;
    compiler::CompileResult cr = compiler::warpSpecialize(k.prog, opts);
    printf("compiler: stages=%d tiled=%s doubleBuffered=%s "
           "(SMEM %u -> %u bytes, %zu arrive/wait barriers)\n\n",
           cr.report.numStages, cr.report.tiled ? "yes" : "no",
           cr.report.doubleBuffered ? "yes" : "no", k.prog.tb.smemBytes,
           cr.program.tb.smemBytes, cr.program.tb.barriers.size());
    printf("---- warp specialized pipeline (Fig. 1b / Fig. 10) ----\n%s\n",
           isa::disassemble(cr.program).c_str());

    sim::GpuConfig baseline;
    sim::RunStats base =
        sim::runProgram(baseline, gmem, k.prog, k.grid, k.params);
    sim::GpuConfig wasp = baseline;
    wasp.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
    wasp.regAlloc = sim::RegAllocPolicy::PerStage;
    wasp.sched = sim::SchedPolicy::WaspCombined;
    sim::RunStats ws =
        sim::runProgram(wasp, gmem, cr.program, k.grid, k.params);

    int bad = 0;
    for (uint32_t i = 0; i < k.outWords; ++i) {
        if (gmem.read32(k.outAddr + i * 4) != k.expected[i])
            ++bad;
    }
    printf("baseline (no specialization): %llu cycles\n",
           static_cast<unsigned long long>(base.cycles));
    printf("WASP tile pipeline:           %llu cycles (%.2fx)\n",
           static_cast<unsigned long long>(ws.cycles),
           static_cast<double>(base.cycles) /
               static_cast<double>(ws.cycles));
    printf("verification: %s\n", bad == 0 ? "PASS" : "FAIL");
    return bad == 0 ? 0 : 1;
}
