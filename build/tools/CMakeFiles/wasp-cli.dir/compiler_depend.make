# Empty compiler generated dependencies file for wasp-cli.
# This may be replaced when dependencies are built.
