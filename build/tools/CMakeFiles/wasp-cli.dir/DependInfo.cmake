
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/wasp_cli.cc" "tools/CMakeFiles/wasp-cli.dir/wasp_cli.cc.o" "gcc" "tools/CMakeFiles/wasp-cli.dir/wasp_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/wasp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wasp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wasp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/wasp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/wasp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wasp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
