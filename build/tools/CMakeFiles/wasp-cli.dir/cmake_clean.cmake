file(REMOVE_RECURSE
  "CMakeFiles/wasp-cli.dir/wasp_cli.cc.o"
  "CMakeFiles/wasp-cli.dir/wasp_cli.cc.o.d"
  "wasp-cli"
  "wasp-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
