file(REMOVE_RECURSE
  "CMakeFiles/tiled_gemm.dir/tiled_gemm.cpp.o"
  "CMakeFiles/tiled_gemm.dir/tiled_gemm.cpp.o.d"
  "tiled_gemm"
  "tiled_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
