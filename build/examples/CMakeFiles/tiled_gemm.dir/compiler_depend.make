# Empty compiler generated dependencies file for tiled_gemm.
# This may be replaced when dependencies are built.
