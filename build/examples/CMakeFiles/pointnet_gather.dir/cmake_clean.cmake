file(REMOVE_RECURSE
  "CMakeFiles/pointnet_gather.dir/pointnet_gather.cpp.o"
  "CMakeFiles/pointnet_gather.dir/pointnet_gather.cpp.o.d"
  "pointnet_gather"
  "pointnet_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointnet_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
