# Empty dependencies file for pointnet_gather.
# This may be replaced when dependencies are built.
