file(REMOVE_RECURSE
  "CMakeFiles/explore_scheduling.dir/explore_scheduling.cpp.o"
  "CMakeFiles/explore_scheduling.dir/explore_scheduling.cpp.o.d"
  "explore_scheduling"
  "explore_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
