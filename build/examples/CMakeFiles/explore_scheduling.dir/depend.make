# Empty dependencies file for explore_scheduling.
# This may be replaced when dependencies are built.
