# Empty dependencies file for fig15_features.
# This may be replaced when dependencies are built.
