file(REMOVE_RECURSE
  "CMakeFiles/fig15_features.dir/fig15_features.cc.o"
  "CMakeFiles/fig15_features.dir/fig15_features.cc.o.d"
  "fig15_features"
  "fig15_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
