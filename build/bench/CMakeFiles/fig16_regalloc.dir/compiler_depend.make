# Empty compiler generated dependencies file for fig16_regalloc.
# This may be replaced when dependencies are built.
