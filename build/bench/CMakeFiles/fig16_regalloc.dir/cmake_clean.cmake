file(REMOVE_RECURSE
  "CMakeFiles/fig16_regalloc.dir/fig16_regalloc.cc.o"
  "CMakeFiles/fig16_regalloc.dir/fig16_regalloc.cc.o.d"
  "fig16_regalloc"
  "fig16_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
