file(REMOVE_RECURSE
  "CMakeFiles/table4_area.dir/table4_area.cc.o"
  "CMakeFiles/table4_area.dir/table4_area.cc.o.d"
  "table4_area"
  "table4_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
