# Empty dependencies file for fig19_dyninstr.
# This may be replaced when dependencies are built.
