file(REMOVE_RECURSE
  "CMakeFiles/fig19_dyninstr.dir/fig19_dyninstr.cc.o"
  "CMakeFiles/fig19_dyninstr.dir/fig19_dyninstr.cc.o.d"
  "fig19_dyninstr"
  "fig19_dyninstr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_dyninstr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
