# Empty compiler generated dependencies file for fig18_rfq_size.
# This may be replaced when dependencies are built.
