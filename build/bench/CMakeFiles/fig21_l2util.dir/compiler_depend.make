# Empty compiler generated dependencies file for fig21_l2util.
# This may be replaced when dependencies are built.
