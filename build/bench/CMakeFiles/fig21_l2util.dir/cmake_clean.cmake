file(REMOVE_RECURSE
  "CMakeFiles/fig21_l2util.dir/fig21_l2util.cc.o"
  "CMakeFiles/fig21_l2util.dir/fig21_l2util.cc.o.d"
  "fig21_l2util"
  "fig21_l2util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_l2util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
