# Empty dependencies file for table2_kernels.
# This may be replaced when dependencies are built.
