file(REMOVE_RECURSE
  "CMakeFiles/fig17_sched.dir/fig17_sched.cc.o"
  "CMakeFiles/fig17_sched.dir/fig17_sched.cc.o.d"
  "fig17_sched"
  "fig17_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
