# Empty compiler generated dependencies file for fig17_sched.
# This may be replaced when dependencies are built.
