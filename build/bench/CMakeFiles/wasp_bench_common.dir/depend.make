# Empty dependencies file for wasp_bench_common.
# This may be replaced when dependencies are built.
