file(REMOVE_RECURSE
  "libwasp_bench_common.a"
)
