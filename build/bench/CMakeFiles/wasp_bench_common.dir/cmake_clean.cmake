file(REMOVE_RECURSE
  "CMakeFiles/wasp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/wasp_bench_common.dir/bench_common.cc.o.d"
  "libwasp_bench_common.a"
  "libwasp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
