file(REMOVE_RECURSE
  "CMakeFiles/fig20_bandwidth.dir/fig20_bandwidth.cc.o"
  "CMakeFiles/fig20_bandwidth.dir/fig20_bandwidth.cc.o.d"
  "fig20_bandwidth"
  "fig20_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
