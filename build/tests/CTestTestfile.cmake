# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
