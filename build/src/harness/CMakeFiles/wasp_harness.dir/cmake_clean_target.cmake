file(REMOVE_RECURSE
  "libwasp_harness.a"
)
