# Empty compiler generated dependencies file for wasp_harness.
# This may be replaced when dependencies are built.
