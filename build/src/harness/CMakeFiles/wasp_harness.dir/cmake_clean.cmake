file(REMOVE_RECURSE
  "CMakeFiles/wasp_harness.dir/configs.cc.o"
  "CMakeFiles/wasp_harness.dir/configs.cc.o.d"
  "CMakeFiles/wasp_harness.dir/report.cc.o"
  "CMakeFiles/wasp_harness.dir/report.cc.o.d"
  "CMakeFiles/wasp_harness.dir/runner.cc.o"
  "CMakeFiles/wasp_harness.dir/runner.cc.o.d"
  "libwasp_harness.a"
  "libwasp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
