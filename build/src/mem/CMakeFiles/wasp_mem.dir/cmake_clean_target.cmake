file(REMOVE_RECURSE
  "libwasp_mem.a"
)
