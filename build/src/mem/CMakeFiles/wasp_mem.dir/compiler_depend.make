# Empty compiler generated dependencies file for wasp_mem.
# This may be replaced when dependencies are built.
