file(REMOVE_RECURSE
  "CMakeFiles/wasp_mem.dir/cache.cc.o"
  "CMakeFiles/wasp_mem.dir/cache.cc.o.d"
  "CMakeFiles/wasp_mem.dir/l2.cc.o"
  "CMakeFiles/wasp_mem.dir/l2.cc.o.d"
  "libwasp_mem.a"
  "libwasp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
