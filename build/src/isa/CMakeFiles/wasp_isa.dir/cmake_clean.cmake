file(REMOVE_RECURSE
  "CMakeFiles/wasp_isa.dir/assembler.cc.o"
  "CMakeFiles/wasp_isa.dir/assembler.cc.o.d"
  "CMakeFiles/wasp_isa.dir/builder.cc.o"
  "CMakeFiles/wasp_isa.dir/builder.cc.o.d"
  "CMakeFiles/wasp_isa.dir/cfg.cc.o"
  "CMakeFiles/wasp_isa.dir/cfg.cc.o.d"
  "CMakeFiles/wasp_isa.dir/disasm.cc.o"
  "CMakeFiles/wasp_isa.dir/disasm.cc.o.d"
  "CMakeFiles/wasp_isa.dir/instruction.cc.o"
  "CMakeFiles/wasp_isa.dir/instruction.cc.o.d"
  "CMakeFiles/wasp_isa.dir/opcode.cc.o"
  "CMakeFiles/wasp_isa.dir/opcode.cc.o.d"
  "CMakeFiles/wasp_isa.dir/program.cc.o"
  "CMakeFiles/wasp_isa.dir/program.cc.o.d"
  "libwasp_isa.a"
  "libwasp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
