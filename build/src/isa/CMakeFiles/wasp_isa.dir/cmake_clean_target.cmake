file(REMOVE_RECURSE
  "libwasp_isa.a"
)
