# Empty dependencies file for wasp_isa.
# This may be replaced when dependencies are built.
