# Empty compiler generated dependencies file for wasp_compiler.
# This may be replaced when dependencies are built.
