
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/affine.cc" "src/compiler/CMakeFiles/wasp_compiler.dir/affine.cc.o" "gcc" "src/compiler/CMakeFiles/wasp_compiler.dir/affine.cc.o.d"
  "/root/repo/src/compiler/dataflow.cc" "src/compiler/CMakeFiles/wasp_compiler.dir/dataflow.cc.o" "gcc" "src/compiler/CMakeFiles/wasp_compiler.dir/dataflow.cc.o.d"
  "/root/repo/src/compiler/waspc.cc" "src/compiler/CMakeFiles/wasp_compiler.dir/waspc.cc.o" "gcc" "src/compiler/CMakeFiles/wasp_compiler.dir/waspc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/wasp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wasp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
