file(REMOVE_RECURSE
  "libwasp_compiler.a"
)
