file(REMOVE_RECURSE
  "CMakeFiles/wasp_compiler.dir/affine.cc.o"
  "CMakeFiles/wasp_compiler.dir/affine.cc.o.d"
  "CMakeFiles/wasp_compiler.dir/dataflow.cc.o"
  "CMakeFiles/wasp_compiler.dir/dataflow.cc.o.d"
  "CMakeFiles/wasp_compiler.dir/waspc.cc.o"
  "CMakeFiles/wasp_compiler.dir/waspc.cc.o.d"
  "libwasp_compiler.a"
  "libwasp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
