file(REMOVE_RECURSE
  "CMakeFiles/wasp_common.dir/log.cc.o"
  "CMakeFiles/wasp_common.dir/log.cc.o.d"
  "CMakeFiles/wasp_common.dir/stats.cc.o"
  "CMakeFiles/wasp_common.dir/stats.cc.o.d"
  "libwasp_common.a"
  "libwasp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
