file(REMOVE_RECURSE
  "libwasp_core.a"
)
