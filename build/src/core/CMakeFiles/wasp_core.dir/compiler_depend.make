# Empty compiler generated dependencies file for wasp_core.
# This may be replaced when dependencies are built.
