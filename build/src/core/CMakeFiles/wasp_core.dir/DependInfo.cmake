
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/area_model.cc" "src/core/CMakeFiles/wasp_core.dir/area_model.cc.o" "gcc" "src/core/CMakeFiles/wasp_core.dir/area_model.cc.o.d"
  "/root/repo/src/core/tma.cc" "src/core/CMakeFiles/wasp_core.dir/tma.cc.o" "gcc" "src/core/CMakeFiles/wasp_core.dir/tma.cc.o.d"
  "/root/repo/src/core/warp_mapper.cc" "src/core/CMakeFiles/wasp_core.dir/warp_mapper.cc.o" "gcc" "src/core/CMakeFiles/wasp_core.dir/warp_mapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/wasp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/wasp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wasp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
