file(REMOVE_RECURSE
  "CMakeFiles/wasp_core.dir/area_model.cc.o"
  "CMakeFiles/wasp_core.dir/area_model.cc.o.d"
  "CMakeFiles/wasp_core.dir/tma.cc.o"
  "CMakeFiles/wasp_core.dir/tma.cc.o.d"
  "CMakeFiles/wasp_core.dir/warp_mapper.cc.o"
  "CMakeFiles/wasp_core.dir/warp_mapper.cc.o.d"
  "libwasp_core.a"
  "libwasp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
