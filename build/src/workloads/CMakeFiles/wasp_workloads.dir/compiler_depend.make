# Empty compiler generated dependencies file for wasp_workloads.
# This may be replaced when dependencies are built.
