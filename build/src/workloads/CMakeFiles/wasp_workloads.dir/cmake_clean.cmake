file(REMOVE_RECURSE
  "CMakeFiles/wasp_workloads.dir/benchmarks.cc.o"
  "CMakeFiles/wasp_workloads.dir/benchmarks.cc.o.d"
  "CMakeFiles/wasp_workloads.dir/kernels.cc.o"
  "CMakeFiles/wasp_workloads.dir/kernels.cc.o.d"
  "libwasp_workloads.a"
  "libwasp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
