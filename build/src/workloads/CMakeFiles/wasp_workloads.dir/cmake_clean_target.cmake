file(REMOVE_RECURSE
  "libwasp_workloads.a"
)
