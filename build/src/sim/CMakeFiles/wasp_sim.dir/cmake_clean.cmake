file(REMOVE_RECURSE
  "CMakeFiles/wasp_sim.dir/gpu.cc.o"
  "CMakeFiles/wasp_sim.dir/gpu.cc.o.d"
  "CMakeFiles/wasp_sim.dir/sm.cc.o"
  "CMakeFiles/wasp_sim.dir/sm.cc.o.d"
  "CMakeFiles/wasp_sim.dir/sm_issue.cc.o"
  "CMakeFiles/wasp_sim.dir/sm_issue.cc.o.d"
  "libwasp_sim.a"
  "libwasp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
