file(REMOVE_RECURSE
  "libwasp_sim.a"
)
