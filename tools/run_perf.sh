#!/usr/bin/env bash
# Simulator wall-clock throughput baseline.
#
# Wraps `wasp-cli perf` to stamp the git sha and host, run the two
# machine sizes that matter for the clocking work, and merge the
# results into BENCH_sim_throughput.json at the repo root:
#
#   - full-size (108 SM) on memory-stall-heavy benchmarks, where the
#     cycle-skipping clock with lazy per-SM ticking should win big
#     (target >= 2x); this leg also sweeps --sm-threads over
#     SM_THREADS (default 1,2,4,8) and records the per-thread-count
#     scaling in each row's "sm_scaling" array — on a multi-core host
#     the 108-SM machine is where the parallel SM phase pays off;
#   - standard (4 SM) on compute-bound benchmarks, the worst case for
#     cycle skipping (nearly every cycle has progress), where the bar
#     is "no regression".
#
# Usage: tools/run_perf.sh [output.json]
# Env:   BUILD_DIR (default: build), REPS (default: 3),
#        SM_THREADS (default: 1,2,4,8; empty string skips the sweep)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
REPS=${REPS:-3}
SM_THREADS=${SM_THREADS-1,2,4,8}
OUT=${1:-BENCH_sim_throughput.json}
CLI="$BUILD_DIR/tools/wasp-cli"
[ -x "$CLI" ] || { echo "error: $CLI not built" >&2; exit 1; }

SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
HOST="$(uname -srm), $(nproc) cpu"

STALL=/tmp/perf_stall.$$.json
COMPUTE=/tmp/perf_compute.$$.json
trap 'rm -f "$STALL" "$COMPUTE"' EXIT

SWEEP=()
[ -n "$SM_THREADS" ] && SWEEP=(--sm-threads "$SM_THREADS")

"$CLI" perf --apps lonestar_bfs,spmv1_g3,spmv2_web \
    --configs baseline,wasp_gpu --full-size --reps "$REPS" \
    ${SWEEP[@]+"${SWEEP[@]}"} \
    --sha "$SHA" --host "$HOST" --out "$STALL"

"$CLI" perf --apps gpt2,bert,hpcg,dlrm \
    --configs baseline,wasp_gpu --reps "$REPS" \
    --sha "$SHA" --host "$HOST" --out "$COMPUTE"

python3 - "$STALL" "$COMPUTE" "$OUT" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
merged = {k: v for k, v in a.items() if k != "full_size"}
merged["results"] = a["results"] + b["results"]
with open(sys.argv[3], "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
EOF

echo "wrote $OUT" >&2
