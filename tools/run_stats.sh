#!/usr/bin/env bash
# Stall-breakdown baseline for the full Table II suite.
#
# Wraps `wasp-cli matrix --json-out` over every benchmark under the
# baseline and wasp_gpu configurations, stamps the git sha and host,
# and writes BENCH_stall_breakdown.json at the repo root. The stall
# field of each cell is the weighted per-benchmark issue-slot
# accounting (one bucket per StallReason, sim/stall.hh); tracked in
# git, it turns accidental shifts in where cycles go into reviewable
# diffs, the same way BENCH_sim_throughput.json tracks simulator
# wall-clock throughput.
#
# Usage: tools/run_stats.sh [output.json]
# Env:   BUILD_DIR (default: build), JOBS (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
OUT=${1:-BENCH_stall_breakdown.json}
CLI="$BUILD_DIR/tools/wasp-cli"
[ -x "$CLI" ] || { echo "error: $CLI not built" >&2; exit 1; }

SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
HOST="$(uname -srm), $(nproc) cpu"

RAW=/tmp/stall_matrix.$$.json
trap 'rm -f "$RAW"' EXIT

"$CLI" matrix --configs baseline,wasp_gpu -j "$JOBS" \
    --json-out="$RAW" > /dev/null

python3 - "$RAW" "$OUT" "$SHA" "$HOST" <<'EOF'
import json, sys
raw = json.load(open(sys.argv[1]))
out = {
    "bench": "stall_breakdown",
    "unit": "weighted_issue_slots",
    "git_sha": sys.argv[3],
    "host": sys.argv[4],
    "results": raw["cells"],
}
with open(sys.argv[2], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
EOF

echo "wrote $OUT" >&2
