#!/usr/bin/env sh
# Build the tree with AddressSanitizer (or UBSan via
# WASP_DURABLE_SAN=undefined) and run the durable-simulation label:
# snapshot/resume bit-identity, the corruption fuzzers over snapshot
# and cache containers, and the checkpoint/resume matrix tests — the
# suite that exercises every new serialization I/O path with hostile
# inputs, which is exactly where an out-of-bounds read would hide.
#
#   ./tools/run_durable_asan.sh [build-dir] [extra ctest args...]
#   WASP_DURABLE_SAN=undefined ./tools/run_durable_asan.sh build-ubsan
#
# Uses a dedicated build directory (default build-asan) so the regular
# build stays uninstrumented. Exits with ctest's status, so it can
# serve as a CI gate.
set -eu

san="${WASP_DURABLE_SAN:-address}"
build_dir="${1:-build-asan}"
[ $# -gt 0 ] && shift

cd "$(dirname "$0")/.."

cmake -B "$build_dir" -S . -DWASP_SANITIZE="$san" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)" \
    --target serialize_test snapshot_test result_cache_test \
    durable_equiv_test wasp-cli

cd "$build_dir"
# The quick durable suite (corruption fuzzers, resume drills, crash
# recovery); pass -L slow instead to sweep the full-matrix variant.
exec ctest -L durable -LE slow --output-on-failure "$@"
