#!/usr/bin/env sh
# Determinism drill for the partition-search autotune loop: the same
# `wasp-cli tune` invocation must produce byte-identical JSON on one
# worker thread and on four. The tune loop's search (beam over
# partition plans and queue-depth ladders, two extraction families)
# breaks ties on canonical plan keys and the matrix runner emits cells
# in canonical order, so parallelism must never leak into the report
# — the same property run_crash_recovery.sh pins for the durable
# matrix.
#
#   ./tools/run_tune_determinism.sh [build-dir] [benchmark] [rounds]
#
# Exits 0 when the two reports are byte-identical.
set -eu

build_dir="${1:-build}"
bench="${2:-3d_unet}"
rounds="${3:-2}"

cd "$(dirname "$0")/.."
cli="$build_dir/tools/wasp-cli"
[ -x "$cli" ] || { echo "error: $cli not built" >&2; exit 2; }

a="/tmp/tune_det_a.$$.json"
b="/tmp/tune_det_b.$$.json"
trap 'rm -f "$a" "$b"' EXIT

"$cli" tune "$bench" --rounds "$rounds" --json -j 1 -o "$a"
"$cli" tune "$bench" --rounds "$rounds" --json -j 4 -o "$b"

if ! cmp -s "$a" "$b"; then
    echo "tune-determinism: FAIL ($bench: -j1 and -j4 reports differ)" >&2
    diff "$a" "$b" >&2 || true
    exit 1
fi
echo "tune-determinism: OK ($bench, $rounds round(s))"
