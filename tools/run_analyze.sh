#!/usr/bin/env bash
# Static-prediction accuracy baseline for the full Table II suite.
#
# Wraps `wasp-cli analyze --all --vs-sim` over the baseline and
# wasp_gpu configurations, stamps the git sha and host, and writes
# BENCH_predicted_stalls.json at the repo root: per cell the predicted
# and measured stall-bucket breakdowns, whether the top work bucket
# matches, and a per-config accuracy summary (match rate, mean
# Spearman rank correlation). Tracked in git, it makes drift in the
# static performance model's accuracy a reviewable diff, the same way
# BENCH_stall_breakdown.json tracks where the simulator's cycles go.
#
# Usage: tools/run_analyze.sh [output.json]
# Env:   BUILD_DIR (default: build), JOBS (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
OUT=${1:-BENCH_predicted_stalls.json}
CLI="$BUILD_DIR/tools/wasp-cli"
[ -x "$CLI" ] || { echo "error: $CLI not built" >&2; exit 1; }

SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
HOST="$(uname -srm), $(nproc) cpu"

RAW=/tmp/predicted_stalls.$$.json
trap 'rm -f "$RAW"' EXIT

"$CLI" analyze --all --configs BASELINE,WASP_GPU --vs-sim \
    --json -j "$JOBS" -o "$RAW"

python3 - "$RAW" "$OUT" "$SHA" "$HOST" <<'EOF'
import json, sys
raw = json.load(open(sys.argv[1]))
raw["git_sha"] = sys.argv[3]
raw["host"] = sys.argv[4]
with open(sys.argv[2], "w") as f:
    json.dump(raw, f, indent=2)
    f.write("\n")
EOF

echo "wrote $OUT" >&2
