#!/usr/bin/env sh
# Build the tree with ThreadSanitizer and run the telemetry label plus
# the report regression gate. Telemetry records from every worker
# thread into per-thread buffers while exporters harvest concurrently,
# and the ledger is appended from arbitrary threads — exactly the
# surfaces a data race would corrupt. `wasp-cli report --check` then
# drives the instrumented matrix end-to-end (spans, counters, cache
# counters) under the same instrumented build.
#
#   ./tools/run_telemetry_tsan.sh [build-dir] [extra ctest args...]
#
# Uses a dedicated build directory (default build-tsan) so the regular
# build stays uninstrumented. Exits non-zero on any failure, so it can
# serve as a CI gate.
set -eu

build_dir="${1:-build-tsan}"
[ $# -gt 0 ] && shift

cd "$(dirname "$0")/.."

cmake -B "$build_dir" -S . -DWASP_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)" --target telemetry_test \
    perf_smoke_test wasp-cli

(cd "$build_dir" && ctest -L telemetry --output-on-failure "$@")

"$build_dir/tools/wasp-cli" report --check --apps 3d_unet,hpcg -j4 \
    -o /dev/null
echo "telemetry-tsan: OK"
