#!/usr/bin/env sh
# Build the tree with ThreadSanitizer and run the fault-injection and
# autotune test labels. The `fault` label covers the
# watchdog/fault-injection suite plus the parallel runMatrix isolation
# tests, which is exactly where a data race between worker threads
# would corrupt a cell's diagnosis; the `tune` label drives the same
# parallel matrix through the stall-feedback autotune loop (including
# its -j1 vs -j4 byte-identity drill).
#
#   ./tools/run_fault_tsan.sh [build-dir] [extra ctest args...]
#
# Uses a dedicated build directory (default build-tsan) so the regular
# build stays uninstrumented. Exits with ctest's status, so it can
# serve as a CI gate.
set -eu

build_dir="${1:-build-tsan}"
[ $# -gt 0 ] && shift

cd "$(dirname "$0")/.."

cmake -B "$build_dir" -S . -DWASP_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)" --target fault_test wasp-cli

cd "$build_dir"
exec ctest -L "fault|tune" --output-on-failure "$@"
