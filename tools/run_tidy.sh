#!/usr/bin/env sh
# Run clang-tidy over the WASP sources using the compilation database
# that CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS is on by default).
#
#   ./tools/run_tidy.sh [build-dir] [extra clang-tidy args...]
#
# Checks come from the repo-root .clang-tidy. Exits non-zero when any
# diagnostic is emitted, so it can serve as a CI gate.
set -eu

build_dir="${1:-build}"
[ $# -gt 0 ] && shift

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "error: $build_dir/compile_commands.json not found." >&2
    echo "Configure first: cmake -B $build_dir -S ." >&2
    exit 2
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "error: clang-tidy not on PATH." >&2
    exit 2
fi

cd "$(dirname "$0")/.."
find src tools -name '*.cc' -print | sort |
    xargs clang-tidy -p "$build_dir" --quiet "$@"
