#!/usr/bin/env sh
# Regenerate the Markdown run report from the committed benchmark
# baselines and gate on regressions:
#
#   ./tools/run_report.sh [build-dir] [extra wasp-cli report args...]
#       Re-simulates the full stall-breakdown matrix, checks every
#       baseline metric against its tolerance, and writes RUN_REPORT.md
#       at the repo root. Non-zero exit names the offending metric.
#
#   ./tools/run_report.sh --gate [build-dir]
#       The ctest self-test (label `telemetry`): the clean tree must
#       pass `report --check` on a two-benchmark subset, and a
#       deliberately perturbed stall baseline must fail it with the
#       perturbed metric named. Prints "report-gate: OK" on success.
set -eu

mode=run
if [ "${1:-}" = "--gate" ]; then
    mode=gate
    shift
fi
build_dir=build
case "${1:-}" in
"" | -*) ;; # no build dir given; everything else is report args
*)
    build_dir="$1"
    shift
    ;;
esac

cd "$(dirname "$0")/.."
cli="$build_dir/tools/wasp-cli"
[ -x "$cli" ] || { echo "error: $cli not built" >&2; exit 2; }

if [ "$mode" = "run" ]; then
    exec "$cli" report --check -o RUN_REPORT.md "$@"
fi

work="$(mktemp -d /tmp/wasp_report_gate.XXXXXX)"
trap 'rm -rf "$work"' EXIT

# 1. Clean tree, quick subset: every metric must be within tolerance.
"$cli" report --check --apps 3d_unet,hpcg -j2 -o "$work/report.md" \
    2> "$work/clean.err" || {
    echo "report-gate: FAIL — clean tree did not pass --check:" >&2
    cat "$work/clean.err" >&2
    exit 1
}
grep -q "report-check: OK" "$work/clean.err" || {
    echo "report-gate: FAIL — no OK line from the clean check" >&2
    exit 1
}
grep -q "## Baseline comparison" "$work/report.md" || {
    echo "report-gate: FAIL — Markdown report missing sections" >&2
    exit 1
}

# 2. Perturb one baseline cell beyond the 2% weightedCycles tolerance;
# the check must now fail and name that metric.
python3 - "$work/perturbed.json" <<'EOF'
import json, sys
doc = json.load(open("BENCH_stall_breakdown.json"))
for cell in doc["results"]:
    if cell["benchmark"] == "3d_unet" and cell["config"] == "WASP_GPU":
        cell["weightedCycles"] *= 1.10
json.dump(doc, open(sys.argv[1], "w"))
EOF
if "$cli" report --check --apps 3d_unet,hpcg -j2 \
    --stall-baseline="$work/perturbed.json" -o /dev/null \
    2> "$work/perturbed.err"; then
    echo "report-gate: FAIL — perturbed baseline passed --check" >&2
    exit 1
fi
grep -q "REGRESSION stall.3d_unet.WASP_GPU.weightedCycles" \
    "$work/perturbed.err" || {
    echo "report-gate: FAIL — regression did not name the metric:" >&2
    cat "$work/perturbed.err" >&2
    exit 1
}

echo "report-gate: OK (clean check passed, perturbation caught)"
