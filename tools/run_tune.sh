#!/usr/bin/env bash
# Stall-feedback autotune baseline for the full Table II suite.
#
# Wraps `wasp-cli tune --all` (compile -> simulate -> fold measured
# stall shares back into the cost model -> re-search, DESIGN.md §13),
# stamps the git sha and host, and writes BENCH_autotune.json at the
# repo root: per benchmark the heuristic / searched / per-round tuned
# results (measured cycles, queue-empty+queue-full shares, chosen
# plans, correction state) plus the suite summary. Tracked in git, it
# makes drift in the partition search's effectiveness a reviewable
# diff, the same way BENCH_predicted_stalls.json tracks the static
# model's accuracy.
#
# Exits non-zero if the acceptance floor regresses: the search must
# improve predicted cycles on at least 5 benchmarks and some tune
# round must reduce the measured queue-empty+queue-full share on
# 3d_unet.
#
# Usage: tools/run_tune.sh [output.json]
# Env:   BUILD_DIR (default: build), JOBS (default: nproc),
#        ROUNDS (default: 3)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
ROUNDS=${ROUNDS:-3}
OUT=${1:-BENCH_autotune.json}
CLI="$BUILD_DIR/tools/wasp-cli"
[ -x "$CLI" ] || { echo "error: $CLI not built" >&2; exit 1; }

SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
HOST="$(uname -srm), $(nproc) cpu"

RAW=/tmp/autotune.$$.json
trap 'rm -f "$RAW"' EXIT

"$CLI" tune --all --rounds "$ROUNDS" --json -j "$JOBS" -o "$RAW"

python3 - "$RAW" "$OUT" "$SHA" "$HOST" <<'EOF'
import json, sys
raw = json.load(open(sys.argv[1]))
raw["git_sha"] = sys.argv[3]
raw["host"] = sys.argv[4]
with open(sys.argv[2], "w") as f:
    json.dump(raw, f, indent=2)
    f.write("\n")

summary = raw["summary"]
unet = next(r for r in raw["results"] if r["benchmark"] == "3d_unet")
ok = True
if summary["predictedImproved"] < 5:
    print("autotune: FAIL predictedImproved %d < 5"
          % summary["predictedImproved"], file=sys.stderr)
    ok = False
if not unet["stallShareReduced"]:
    print("autotune: FAIL 3d_unet queue stall share not reduced",
          file=sys.stderr)
    ok = False
if not ok:
    sys.exit(1)
print("autotune: OK (predicted improved %d/%d, measured improved %d, "
      "stall share reduced %d)"
      % (summary["predictedImproved"], summary["benchmarks"],
         summary["measuredImproved"], summary["stallShareReduced"]),
      file=sys.stderr)
EOF

echo "wrote $OUT" >&2
