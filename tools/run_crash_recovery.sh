#!/usr/bin/env sh
# End-to-end crash-recovery drill for the durable experiment matrix:
#
#   1. Run `wasp-cli matrix` to completion and keep its --json-out as
#      the ground truth.
#   2. Start the same matrix against a fresh result cache, let it
#      publish at least one cache entry, then SIGKILL it mid-run — the
#      hardest interruption there is: no handlers, no flushing, a torn
#      temp file at worst.
#   3. Re-invoke with --resume=<cache-dir>. Finished cells load from
#      the cache, everything else recomputes.
#   4. The recovered run's --json-out must be byte-identical to the
#      uninterrupted one after stripping the `provenance` field (which
#      records cached-vs-computed and is the only legitimate
#      difference).
#
#   ./tools/run_crash_recovery.sh [build-dir] [--apps a,b,..] [--configs c,..]
#
# Exits 0 on byte-identical recovery, 1 otherwise. The quick ctest
# variant (label `durable`) runs this with a two-benchmark matrix.
set -eu

build_dir="${1:-build}"
[ $# -gt 0 ] && shift

cd "$(dirname "$0")/.."
cli="$build_dir/tools/wasp-cli"
[ -x "$cli" ] || { echo "error: $cli not built" >&2; exit 2; }

apps="--apps 3d_unet,pointnet"
configs="--configs baseline,wasp_gpu"
prev=""
for arg in "$@"; do
    case "$prev" in
        --apps) apps="--apps $arg"; prev=""; continue ;;
        --configs) configs="--configs $arg"; prev=""; continue ;;
    esac
    case "$arg" in
        --apps=*) apps="--apps ${arg#--apps=}" ;;
        --configs=*) configs="--configs ${arg#--configs=}" ;;
        --apps|--configs) prev="$arg" ;;
    esac
done

work="$(mktemp -d /tmp/wasp_crash_recovery.XXXXXX)"
trap 'rm -rf "$work"' EXIT
cache="$work/cache"

# 1. Ground truth: one uninterrupted run, no cache involved.
"$cli" matrix $apps $configs -j2 --json-out="$work/expected.json" \
    > /dev/null 2>&1 || true

# 2. Start the cached run in the background and SIGKILL it as soon as
# the first cache entry lands (i.e. genuinely mid-matrix).
"$cli" matrix $apps $configs -j1 --cache="$cache" \
    --json-out="$work/crashed.json" > /dev/null 2>&1 &
pid=$!
tries=0
while [ "$(ls "$cache" 2>/dev/null | grep -c '\.wrc$' || true)" -eq 0 ]
do
    if ! kill -0 "$pid" 2>/dev/null; then
        # The run finished before we could kill it: still a valid
        # (degenerate) recovery test — every cell will come from cache.
        break
    fi
    tries=$((tries + 1))
    if [ "$tries" -gt 600 ]; then
        echo "error: no cache entry appeared within 60s" >&2
        kill -9 "$pid" 2>/dev/null || true
        exit 2
    fi
    sleep 0.1
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
echo "crash-recovery: killed matrix pid $pid with" \
     "$(ls "$cache" | grep -c '\.wrc$' || true) cache entr(ies) published"

# 3. Recover: resume against the same cache directory.
"$cli" matrix $apps $configs -j2 --resume="$cache" \
    --json-out="$work/recovered.json" > /dev/null 2>&1 || true

# 4. Byte-compare after stripping provenance and the cache counter
# section (the ground-truth run has no cache; the recovered run's hit
# counts depend on where the crash landed).
strip_provenance() {
    sed -e 's/"provenance":"[a-z]*",//g' \
        -e 's/,"cache":{[^}]*}//g' "$1"
}
strip_provenance "$work/expected.json" > "$work/expected.stripped"
strip_provenance "$work/recovered.json" > "$work/recovered.stripped"
if cmp -s "$work/expected.stripped" "$work/recovered.stripped"; then
    echo "crash-recovery: OK (recovered report byte-identical)"
    exit 0
fi
echo "crash-recovery: FAIL — recovered report differs:" >&2
diff "$work/expected.stripped" "$work/recovered.stripped" >&2 || true
exit 1
