/**
 * @file
 * wasp-cli — command-line driver for the WASP toolchain.
 *
 *   wasp-cli compile <kernel.wsass> [--tile-only] [--no-tma]
 *       Warp specialize a WSASS kernel and print the result.
 *
 *   wasp-cli run <kernel.wsass> --grid N [--param V]... [--wasp]
 *       Assemble (and optionally warp specialize) a kernel, run it on
 *       the simulated GPU, and print the run statistics.
 *
 *   wasp-cli roundtrip <kernel.wsass>
 *       Assemble and disassemble (format check).
 *
 * Kernel parameters are 32-bit values passed to c[0], c[1], ... in
 * order. `run` allocates no data; kernels that need input arrays should
 * use `--alloc BYTES` parameters, which allocate zeroed global memory
 * and pass the base address as the next parameter.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "compiler/waspc.hh"
#include "isa/program.hh"
#include "mem/global_memory.hh"
#include "sim/gpu.hh"

using namespace wasp;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: wasp-cli compile <kernel.wsass> [--tile-only] "
                 "[--no-tma]\n"
                 "       wasp-cli run <kernel.wsass> --grid N "
                 "[--param V | --alloc BYTES]... [--wasp]\n"
                 "       wasp-cli roundtrip <kernel.wsass>\n");
    return 2;
}

int
cmdCompile(const std::string &path, bool tile_only, bool no_tma)
{
    isa::Program prog = isa::assemble(readFile(path));
    compiler::CompileOptions opts;
    opts.streamGather = !tile_only;
    opts.emitTma = !no_tma;
    compiler::CompileResult cr = compiler::warpSpecialize(prog, opts);
    std::fprintf(stderr,
                 "; stages=%d extracted=%d tiled=%s doubleBuffered=%s "
                 "tmaStreams=%d tmaGathers=%d transformed=%s\n",
                 cr.report.numStages, cr.report.extractedLoads,
                 cr.report.tiled ? "yes" : "no",
                 cr.report.doubleBuffered ? "yes" : "no",
                 cr.report.tmaStreams, cr.report.tmaGathers,
                 cr.report.transformed ? "yes" : "no");
    for (const auto &note : cr.report.notes)
        std::fprintf(stderr, "; note: %s\n", note.c_str());
    std::printf("%s", isa::disassemble(cr.program).c_str());
    return 0;
}

int
cmdRun(const std::string &path, int grid,
       const std::vector<uint32_t> &params,
       const std::vector<size_t> &alloc_slots,
       const std::vector<uint32_t> &alloc_bytes, bool wasp)
{
    isa::Program prog = isa::assemble(readFile(path));
    mem::GlobalMemory gmem;
    std::vector<uint32_t> final_params = params;
    for (size_t i = 0; i < alloc_slots.size(); ++i) {
        uint32_t addr = gmem.alloc(alloc_bytes[i]);
        final_params.insert(final_params.begin() +
                                static_cast<long>(alloc_slots[i]),
                            addr);
    }

    const isa::Program *to_run = &prog;
    compiler::CompileResult cr;
    sim::GpuConfig gpu;
    if (wasp) {
        compiler::CompileOptions opts;
        opts.emitTma = true;
        cr = compiler::warpSpecialize(prog, opts);
        to_run = &cr.program;
        gpu.queueBackend = sim::QueueBackend::Rfq;
        gpu.regAlloc = sim::RegAllocPolicy::PerStage;
        gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
        gpu.sched = sim::SchedPolicy::WaspCombined;
        gpu.waspTmaEnabled = true;
        std::fprintf(stderr, "; warp specialized into %d stages\n",
                     cr.report.numStages);
    }
    sim::RunStats stats =
        sim::runProgram(gpu, gmem, *to_run, grid, final_params);
    std::printf("cycles            %llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("dyn instructions  %llu\n",
                static_cast<unsigned long long>(stats.totalDynInstrs()));
    for (int c = 0; c < 6; ++c) {
        std::printf("  %-10s      %llu\n",
                    isa::categoryName(static_cast<isa::InstrCategory>(c)),
                    static_cast<unsigned long long>(
                        stats.dynInstrs[static_cast<size_t>(c)]));
    }
    std::printf("L1 hit rate       %.1f%%\n", stats.l1HitRate() * 100.0);
    std::printf("L2 utilization    %.1f%%\n",
                stats.l2Utilization() * 100.0);
    std::printf("DRAM utilization  %.1f%%\n",
                stats.dramUtilization() * 100.0);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string cmd = argv[1];
    std::string path = argv[2];
    if (cmd == "roundtrip") {
        isa::Program prog = isa::assemble(readFile(path));
        std::printf("%s", isa::disassemble(prog).c_str());
        return 0;
    }
    if (cmd == "compile") {
        bool tile_only = false;
        bool no_tma = false;
        for (int i = 3; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--tile-only"))
                tile_only = true;
            else if (!std::strcmp(argv[i], "--no-tma"))
                no_tma = true;
            else
                return usage();
        }
        return cmdCompile(path, tile_only, no_tma);
    }
    if (cmd == "run") {
        int grid = 1;
        bool wasp = false;
        std::vector<uint32_t> params;
        std::vector<size_t> alloc_slots;
        std::vector<uint32_t> alloc_bytes;
        for (int i = 3; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--grid") && i + 1 < argc) {
                grid = std::atoi(argv[++i]);
            } else if (!std::strcmp(argv[i], "--param") && i + 1 < argc) {
                params.push_back(static_cast<uint32_t>(
                    std::strtoul(argv[++i], nullptr, 0)));
            } else if (!std::strcmp(argv[i], "--alloc") && i + 1 < argc) {
                alloc_slots.push_back(params.size() + alloc_slots.size());
                alloc_bytes.push_back(static_cast<uint32_t>(
                    std::strtoul(argv[++i], nullptr, 0)));
            } else if (!std::strcmp(argv[i], "--wasp")) {
                wasp = true;
            } else {
                return usage();
            }
        }
        return cmdRun(path, grid, params, alloc_slots, alloc_bytes, wasp);
    }
    return usage();
}
