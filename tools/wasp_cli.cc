/**
 * @file
 * wasp-cli — command-line driver for the WASP toolchain.
 *
 *   wasp-cli compile <kernel.wsass> [--tile-only] [--no-tma]
 *             [--strategy={heuristic,search}]
 *       Warp specialize a WSASS kernel and print the result.
 *       --strategy=search replaces the one-shot heuristic stage
 *       partition with a beam search over legal merges, splits, and
 *       queue-depth ladders, scored by the static performance model
 *       (compiler/partition.hh); the chosen plan and candidate count
 *       are reported on stderr.
 *
 *   wasp-cli tune <benchmark>|--all [--config NAME] [--rounds N]
 *             [-j N] [--cache=DIR] [--budget-wall-ms=N] [--json]
 *             [-o FILE]
 *       Stall-feedback autotune loop: measure the heuristic partition
 *       and the searched partition through the fault-isolated matrix
 *       runner, then feed the measured queue-empty / queue-full /
 *       scoreboard stall shares back into the static model as
 *       rate-graph cost corrections (rate_graph.hh RateCorrections)
 *       and re-search, up to --rounds times (default 3), stopping
 *       early once model and simulator agree on those buckets. The
 *       tuned pick is the best *measured* round including the
 *       heuristic baseline, so the tuner never ships a measured
 *       regression. --json
 *       emits the schema committed as BENCH_autotune.json
 *       (tools/run_tune.sh); default config is wasp_gpu. Each round
 *       runs under a distinct spec name, so a shared --cache
 *       directory keeps rounds separate and re-runs warm.
 *
 *   wasp-cli run <kernel.wsass> --grid N [--param V]... [--wasp]
 *       Assemble (and optionally warp specialize) a kernel, run it on
 *       the simulated GPU, and print the run statistics.
 *
 *   wasp-cli roundtrip <kernel.wsass>
 *       Assemble and disassemble (format check).
 *
 *   wasp-cli lint <kernel.wsass>... [--compile] [--tile-only]
 *             [--no-tma] [-Wall]
 *       Run the static pipeline verifier (deadlock-freedom and
 *       resource legality; see src/compiler/verify.hh) over each
 *       kernel as written, or over its warp-specialized form with
 *       --compile. Prints one diagnostic per line and a per-file
 *       summary; -Wall additionally prints warning-severity findings
 *       (dead queue pushes, zero-work stages, and queue depths a
 *       straight-line push count or the steady-state fill-latency
 *       bound proves oversized or undersized).
 *       Warnings never affect the exit code: non-zero means at least
 *       one file had an error-severity finding.
 *
 *   wasp-cli analyze <benchmark>|--all [--configs c1,c2,..] [--json]
 *             [--vs-sim] [-j N] [-o FILE]
 *       Static performance prediction (compiler/perf_model.hh): for
 *       each kernel of the benchmark, predict the stall-bucket
 *       breakdown, steady-state period and bottleneck stage without
 *       simulating, and aggregate per benchmark with the Table II mix
 *       weights. Compile decisions mirror the harness (including a
 *       static profitability check in place of the measured one).
 *       --vs-sim additionally runs the simulator on N workers and
 *       scores the prediction per cell: top-work-bucket match plus
 *       the Spearman rank correlation of predicted vs measured stall
 *       shares. Kernels whose loop bounds the analysis could not
 *       derive (non-affine) are re-predicted with measured trip
 *       counts fed back as TripHints (derived from per-stage issue
 *       counters), and the summary reports the mean cycle error with
 *       assumed vs hinted trips. --json emits the canonical schema that
 *       tools/run_analyze.sh wraps into BENCH_predicted_stalls.json;
 *       default configs are baseline and wasp_gpu.
 *
 *   wasp-cli matrix [--apps a,b,..] [--configs c1,c2,..] [-j N]
 *             [--sm-threads N] [--on-fault={abort,skip,retry}]
 *             [--json-out=FILE] [--telemetry] [--ledger=FILE]
 *             [--progress]
 *       Run the Table II benchmark × paper-config matrix on N worker
 *       threads (default: hardware concurrency) and print speedups
 *       against the first config plus raw cycles. Output is
 *       byte-identical for every N: each cell owns its simulator
 *       state and rows are emitted in canonical order. --sm-threads
 *       additionally ticks the SMs inside each simulation on N threads
 *       (sim/config.hh smParallelism); inner and outer parallelism
 *       compose and the report stays byte-identical. A cell whose
 *       simulation deadlocks or trips the watchdog is isolated per
 *       --on-fault (default skip): the rest of the matrix completes,
 *       the failed cell is reported with its pipeline dump, and the
 *       exit code is 3. --telemetry records spans/metrics for this run
 *       and appends a "telemetry" section to --json-out plus a cache
 *       counter footer; --ledger=FILE (implies --telemetry) appends the
 *       per-job JSONL event stream (job.submitted/started/completed/
 *       cached/resumed/failed and budget trips) to FILE; --progress
 *       prints a rate-limited one-line heartbeat (cells done, in
 *       flight, cache hits) to stderr while the matrix runs — only
 *       when stderr is a TTY unless WASP_PROGRESS_FORCE=1. Telemetry
 *       never perturbs simulation results: RunStats are bit-identical
 *       with it on or off, and the env vars WASP_TELEMETRY=1 /
 *       WASP_LEDGER=FILE enable the same recording for any command.
 *
 *   wasp-cli stats <benchmark> [--config NAME] [--json] [--timeline]
 *             [-o FILE]
 *       Run every kernel of a Table II benchmark under one paper
 *       config and print its cycle accounting: the issue-slot stall
 *       breakdown (every StallReason bucket, with shares), per-stage
 *       issue counts, memory-system counters, and the occupancy
 *       distributions. --json emits the canonical RunStats schema
 *       (sim/stats_io.hh) per kernel instead of tables; --timeline
 *       adds the utilization timeline to the text output (always
 *       present in JSON). -o writes to a file instead of stdout.
 *
 *   wasp-cli trace <benchmark> [--config NAME] [-o FILE] [--telemetry]
 *       Re-run the benchmark with the event trace sink attached and
 *       write a Chrome-trace/Perfetto JSON file (default trace.json;
 *       open in chrome://tracing or ui.perfetto.dev). Kernels of the
 *       benchmark are laid end-to-end on one timeline. The traced run
 *       executes exactly the program the matrix would run: compile
 *       decisions are settled in an untraced pass first. --telemetry
 *       swaps the simulated-event timeline for the toolchain's own
 *       telemetry spans (compile passes, sim phases) rendered as a
 *       Chrome trace — one track per toolchain thread.
 *
 *       Durability options: --cache=DIR keeps a crash-safe persistent
 *       result cache (content-addressed on kernel text, machine
 *       config, seed, and simulator version; corrupt entries are
 *       quarantined and recomputed); --resume=DIR additionally
 *       continues checkpointed over-budget cells exactly where they
 *       stopped. --budget-wall-ms/--budget-cycles/--budget-rss-mb set
 *       per-cell ceilings, and --on-budget picks what a trip does:
 *       skip (default), retry once, or checkpoint (persist a resumable
 *       snapshot for --resume). The report's Provenance column (and
 *       the JSON `provenance` field) records how each cell was
 *       obtained: computed, cached, or resumed.
 *
 *   wasp-cli cache {stats|verify|gc} --dir=DIR [--max-bytes=N]
 *       Inspect or maintain a result-cache directory: `stats` prints
 *       entry counts and bytes, `verify` decode-checks every entry and
 *       quarantines corrupt ones (exit 3 if any), `gc` deletes
 *       quarantined files and evicts oldest-first down to
 *       --max-bytes.
 *
 *   wasp-cli perf [--apps a,b,..] [--configs c1,c2,..] [--reps N]
 *             [--sm-threads N1,N2,..] [--full-size] [--sha S]
 *             [--host H] [--out FILE]
 *       Simulator wall-clock throughput: for each benchmark × config,
 *       time the simulation alone (compile, input build, and output
 *       verification excluded) under the reference clock and the
 *       cycle-skipping clock, and report cycles/second for each plus
 *       the speedup. Both clocks must agree on the simulated cycle
 *       count (hard error otherwise). --sm-threads retimes the
 *       cycle-skip clock at each listed SM thread count and adds a
 *       per-row "sm_scaling" array to the JSON; every sweep point must
 *       land on the same cycle count. --full-size swaps in the 108-SM
 *       machine. Emits JSON (tools/run_perf.sh wraps this to stamp the
 *       git sha and host and write BENCH_sim_throughput.json).
 *
 *   wasp-cli report [--check] [--apps a,b,..] [-j N] [-o FILE]
 *             [--stall-baseline=F] [--throughput-baseline=F]
 *             [--autotune-baseline=F]
 *       Render a Markdown run report from the committed benchmark
 *       baselines plus a fresh simulation of the stall-breakdown
 *       matrix: top benchmarks by weighted cycles, per-config stall-
 *       share table, cache efficiency of the live rerun, and a
 *       regression comparison of live numbers against
 *       BENCH_stall_breakdown.json with per-metric tolerances
 *       (weightedCycles 2% relative; stall shares 0.02 absolute;
 *       l1/l2/dram utilizations 0.05 absolute). The throughput
 *       baseline is checked for internal consistency (cps = cycles /
 *       seconds, speedup = skip/ref) and the autotune baseline for
 *       summary-vs-results agreement and the "tuned never regresses
 *       measured cycles" invariant. --check exits non-zero on the
 *       first out-of-tolerance metric and names it; --apps restricts
 *       the re-simulated subset (default: every benchmark in the
 *       stall baseline).
 *
 * Kernel parameters are 32-bit values passed to c[0], c[1], ... in
 * order. `run` allocates no data; kernels that need input arrays should
 * use `--alloc BYTES` parameters, which allocate zeroed global memory
 * and pass the base address as the next parameter.
 */

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/json.hh"
#include "common/json_parse.hh"
#include "common/log.hh"
#include "common/telemetry.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "compiler/verify.hh"
#include "compiler/waspc.hh"
#include "harness/report.hh"
#include "harness/result_cache.hh"
#include "harness/runner.hh"
#include "isa/program.hh"
#include "mem/global_memory.hh"
#include "sim/gpu.hh"
#include "sim/stats_io.hh"
#include "workloads/benchmarks.hh"

using namespace wasp;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: wasp-cli compile <kernel.wsass> [--tile-only] "
                 "[--no-tma]\n"
                 "                [--strategy={heuristic,search}]\n"
                 "       wasp-cli tune <benchmark>|--all [--config NAME] "
                 "[--rounds N] [-j N]\n"
                 "                [--cache=DIR] [--budget-wall-ms=N] "
                 "[--json] [-o FILE]\n"
                 "       wasp-cli run <kernel.wsass> --grid N "
                 "[--param V | --alloc BYTES]... [--wasp]\n"
                 "       wasp-cli roundtrip <kernel.wsass>\n"
                 "       wasp-cli lint <kernel.wsass>... [--compile] "
                 "[--tile-only] [--no-tma] [-Wall]\n"
                 "       wasp-cli analyze <benchmark>|--all "
                 "[--configs c1,c2,..] [--json] [--vs-sim]\n"
                 "                [-j N] [-o FILE]\n"
                 "       wasp-cli stats <benchmark> [--config NAME] "
                 "[--json] [--timeline] [-o FILE]\n"
                 "       wasp-cli trace <benchmark> [--config NAME] "
                 "[-o FILE]\n"
                 "       wasp-cli matrix [--apps a,b,..] "
                 "[--configs c1,c2,..] [-j N]\n"
                 "                [--sm-threads N] "
                 "[--on-fault={abort,skip,retry}] "
                 "[--json-out=FILE]\n"
                 "                [--cache=DIR | --resume=DIR] "
                 "[--budget-wall-ms=N]\n"
                 "                [--budget-cycles=N] "
                 "[--budget-rss-mb=N]\n"
                 "                [--on-budget={skip,retry,checkpoint}]\n"
                 "                [--telemetry] [--ledger=FILE] "
                 "[--progress]\n"
                 "       wasp-cli report [--check] [--apps a,b,..] "
                 "[-j N] [-o FILE]\n"
                 "                [--stall-baseline=F] "
                 "[--throughput-baseline=F]\n"
                 "                [--autotune-baseline=F]\n"
                 "       wasp-cli cache {stats|verify|gc} --dir=DIR "
                 "[--max-bytes=N]\n"
                 "       wasp-cli perf [--apps a,b,..] "
                 "[--configs c1,c2,..] [--reps N]\n"
                 "                [--sm-threads N1,N2,..] "
                 "[--full-size] [--sha S] [--host H] "
                 "[--out FILE]\n"
                 "           configs: baseline, compiler_tile, "
                 "compiler_all,\n"
                 "                    +regalloc, +wasp_tma, +rfq, "
                 "wasp_gpu\n");
    return 2;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(list);
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

bool
parseStrategy(const std::string &name,
              compiler::PartitionStrategy *out)
{
    if (name == "heuristic") {
        *out = compiler::PartitionStrategy::Heuristic;
        return true;
    }
    if (name == "search") {
        *out = compiler::PartitionStrategy::Search;
        return true;
    }
    return false;
}

bool
parseConfig(const std::string &name, harness::PaperConfig *out)
{
    using harness::PaperConfig;
    static const std::vector<std::pair<std::string, PaperConfig>> kNames =
        {{"baseline", PaperConfig::Baseline},
         {"compiler_tile", PaperConfig::CompilerTile},
         {"compiler_all", PaperConfig::CompilerAll},
         {"+regalloc", PaperConfig::PlusRegAlloc},
         {"+wasp_tma", PaperConfig::PlusTma},
         {"+rfq", PaperConfig::PlusRfq},
         {"wasp_gpu", PaperConfig::WaspGpu}};
    std::string lower;
    for (char c : name)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    for (const auto &[key, which] : kNames) {
        // Accept the short name or the paper's config name, either case.
        std::string paper = harness::paperConfigName(which);
        for (char &c : paper)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (lower == key || lower == paper) {
            *out = which;
            return true;
        }
    }
    return false;
}

int
cmdMatrix(const std::vector<std::string> &args)
{
    using harness::PaperConfig;
    std::vector<PaperConfig> configs = {
        PaperConfig::Baseline, PaperConfig::CompilerTile,
        PaperConfig::CompilerAll, PaperConfig::WaspGpu};
    std::vector<std::string> apps;
    int jobs = 0;
    int sm_threads = 0;
    harness::FaultPolicy on_fault = harness::FaultPolicy::Skip;
    std::string json_out;
    bool telemetry = false;
    bool progress = false;
    std::string ledger;
    harness::MatrixOptions mopts;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--telemetry") {
            telemetry = true;
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg.rfind("--ledger=", 0) == 0) {
            ledger = arg.substr(std::strlen("--ledger="));
            if (ledger.empty())
                return usage();
        } else if (arg.rfind("--json-out=", 0) == 0) {
            json_out = arg.substr(std::strlen("--json-out="));
            if (json_out.empty())
                return usage();
        } else if (arg.rfind("--cache=", 0) == 0) {
            mopts.cacheDir = arg.substr(std::strlen("--cache="));
            if (mopts.cacheDir.empty())
                return usage();
        } else if (arg.rfind("--resume=", 0) == 0) {
            // --resume implies the cache: cached cells are served,
            // checkpointed cells continue where they stopped.
            mopts.cacheDir = arg.substr(std::strlen("--resume="));
            mopts.resume = true;
            if (mopts.cacheDir.empty())
                return usage();
        } else if (arg.rfind("--budget-wall-ms=", 0) == 0) {
            mopts.budget.wallMs = std::strtoull(
                arg.c_str() + std::strlen("--budget-wall-ms="), nullptr,
                10);
        } else if (arg.rfind("--budget-cycles=", 0) == 0) {
            mopts.budget.cycles = std::strtoull(
                arg.c_str() + std::strlen("--budget-cycles="), nullptr,
                10);
        } else if (arg.rfind("--budget-rss-mb=", 0) == 0) {
            mopts.budget.rssMb = std::strtoull(
                arg.c_str() + std::strlen("--budget-rss-mb="), nullptr,
                10);
        } else if (arg.rfind("--on-budget=", 0) == 0) {
            std::string policy = arg.substr(std::strlen("--on-budget="));
            if (policy == "skip")
                mopts.onBudget = harness::BudgetPolicy::Skip;
            else if (policy == "retry")
                mopts.onBudget = harness::BudgetPolicy::Retry;
            else if (policy == "checkpoint")
                mopts.onBudget = harness::BudgetPolicy::Checkpoint;
            else
                return usage();
        } else if (arg.rfind("--on-fault=", 0) == 0) {
            std::string policy = arg.substr(std::strlen("--on-fault="));
            if (policy == "abort")
                on_fault = harness::FaultPolicy::Abort;
            else if (policy == "skip")
                on_fault = harness::FaultPolicy::Skip;
            else if (policy == "retry")
                on_fault = harness::FaultPolicy::Retry;
            else
                return usage();
        } else if (arg == "--apps" && i + 1 < args.size()) {
            apps = splitCommas(args[++i]);
        } else if (arg == "--configs" && i + 1 < args.size()) {
            configs.clear();
            for (const auto &name : splitCommas(args[++i])) {
                PaperConfig which;
                if (!parseConfig(name, &which))
                    fatal("unknown config '%s'", name.c_str());
                configs.push_back(which);
            }
        } else if (arg == "-j" && i + 1 < args.size()) {
            jobs = std::atoi(args[++i].c_str());
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            jobs = std::atoi(arg.c_str() + 2);
        } else if (arg == "--jobs" && i + 1 < args.size()) {
            jobs = std::atoi(args[++i].c_str());
        } else if (arg.rfind("--sm-threads=", 0) == 0) {
            sm_threads = std::atoi(
                arg.c_str() + std::strlen("--sm-threads="));
            if (sm_threads <= 0)
                return usage();
        } else if (arg == "--sm-threads" && i + 1 < args.size()) {
            sm_threads = std::atoi(args[++i].c_str());
            if (sm_threads <= 0)
                return usage();
        } else {
            return usage();
        }
    }
    if (configs.empty())
        return usage();
    if (apps.empty())
        for (const auto &b : workloads::suite())
            apps.push_back(b.name);
    if (jobs <= 0)
        jobs = ThreadPool::defaultJobs();

    std::vector<harness::ConfigSpec> specs;
    std::vector<std::string> config_names;
    for (PaperConfig which : configs) {
        specs.push_back(harness::makeConfig(which));
        // Inner SM-level parallelism composes with the outer -j matrix
        // jobs; the report stays byte-identical either way.
        if (sm_threads > 0)
            specs.back().gpu.smParallelism = sm_threads;
        config_names.push_back(specs.back().name);
    }

    if (!ledger.empty()) {
        std::string err;
        if (!telem::openLedger(ledger, &err))
            fatal("cannot open ledger '%s': %s", ledger.c_str(),
                  err.c_str());
        telemetry = true;
    } else if (telemetry) {
        telem::enable(true);
    }

    harness::CacheCounters cache_counters;
    mopts.cacheCounters = &cache_counters;

    // --progress heartbeat: one line to stderr, rate-limited so a fast
    // matrix doesn't scroll, final cell always reported. Off when
    // stderr is not a TTY (CI logs stay clean) unless forced for
    // tests. runMatrix serializes onProgress calls, so the captured
    // rate-limiter state needs no lock of its own.
    bool progress_on = progress;
#ifndef _WIN32
    if (progress_on && isatty(2) == 0 &&
        std::getenv("WASP_PROGRESS_FORCE") == nullptr)
        progress_on = false;
#endif
    auto last_beat = std::chrono::steady_clock::now();
    bool any_beat = false;
    if (progress_on) {
        mopts.onProgress = [&](const harness::MatrixProgress &p) {
            auto now = std::chrono::steady_clock::now();
            bool final = p.done == p.total;
            if (any_beat && !final &&
                now - last_beat < std::chrono::milliseconds(500))
                return;
            any_beat = true;
            last_beat = now;
            std::fprintf(stderr,
                         "matrix: %d/%d cells done, %d in flight, "
                         "%d cache hits, %d failed\n",
                         p.done, p.total, p.inFlight, p.cacheHits,
                         p.failed);
        };
    }

    auto start = std::chrono::steady_clock::now();
    mopts.jobs = jobs;
    mopts.onFault = on_fault;
    std::vector<harness::BenchResult> results =
        harness::runMatrix(specs, apps, mopts);
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    // Timing goes to stderr: stdout must be byte-identical across -j.
    std::fprintf(stderr, "matrix: %zu simulations on %d thread(s) in "
                 "%lld ms\n",
                 results.size(), jobs, static_cast<long long>(ms));

    harness::MatrixReport report(apps, config_names);
    for (const auto &r : results)
        report.add(r);
    report.setCacheCounters(cache_counters);
    if (telemetry)
        report.setTelemetryJson(telem::metricsJson());
    std::printf("=== speedup vs %s ===\n%s\n",
                config_names.front().c_str(),
                report.renderSpeedups(config_names.front()).c_str());
    std::printf("=== raw results ===\n%s",
                report.renderCycles().c_str());
    std::string cache_footer = report.renderCacheFooter();
    if (!cache_footer.empty())
        std::printf("%s", cache_footer.c_str());
    int failed = report.failedCells();
    if (failed > 0) {
        std::printf("\n=== failed cells (%d) ===\n%s", failed,
                    report.renderFailures().c_str());
    }
    if (!json_out.empty()) {
        std::ofstream out(json_out);
        if (!out)
            fatal("cannot write '%s'", json_out.c_str());
        out << report.renderJson() << "\n";
        std::fprintf(stderr, "matrix: wrote %s\n", json_out.c_str());
    }
    if (!ledger.empty())
        telem::closeLedger();
    bool all_verified = true;
    for (const auto &r : results)
        all_verified = all_verified && r.verified;
    // Exit codes: 0 all cells ok+verified, 1 verification mismatches,
    // 3 at least one cell failed to complete (deadlock/fault).
    if (failed > 0)
        return 3;
    return all_verified ? 0 : 1;
}

int
cmdCache(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    std::string action = args[0];
    if (action != "stats" && action != "verify" && action != "gc")
        return usage();
    std::string dir;
    uint64_t max_bytes = 0;
    bool have_max = false;
    for (size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--dir=", 0) == 0) {
            dir = arg.substr(std::strlen("--dir="));
        } else if (arg.rfind("--max-bytes=", 0) == 0) {
            max_bytes = std::strtoull(
                arg.c_str() + std::strlen("--max-bytes="), nullptr, 10);
            have_max = true;
        } else {
            return usage();
        }
    }
    if (dir.empty())
        return usage();
    harness::ResultCache cache(dir);
    if (action == "verify") {
        std::vector<std::string> report;
        size_t bad = cache.verify(&report);
        for (const auto &line : report)
            std::printf("%s\n", line.c_str());
        harness::ResultCache::Stats st = cache.stats();
        std::printf("cache verify: %zu entries ok, %zu quarantined\n",
                    st.entries, bad);
        return bad == 0 ? 0 : 3;
    }
    if (action == "gc") {
        if (!have_max) {
            std::fprintf(stderr, "cache gc: --max-bytes=N required\n");
            return usage();
        }
        size_t removed = cache.gc(max_bytes);
        harness::ResultCache::Stats st = cache.stats();
        std::printf("cache gc: removed %zu file(s); %zu entries "
                    "(%llu bytes) remain\n",
                    removed, st.entries,
                    static_cast<unsigned long long>(st.bytes));
        return 0;
    }
    harness::ResultCache::Stats st = cache.stats();
    std::printf("cache %s:\n  entries:     %zu\n  bytes:       %llu\n"
                "  quarantined: %zu\n",
                dir.c_str(), st.entries,
                static_cast<unsigned long long>(st.bytes),
                st.corruptFiles);
    return 0;
}

int
cmdPerf(const std::vector<std::string> &args)
{
    using harness::PaperConfig;
    std::vector<PaperConfig> configs = {PaperConfig::Baseline,
                                        PaperConfig::WaspGpu};
    std::vector<std::string> apps;
    int reps = 3;
    bool full_size = false;
    std::vector<int> sm_threads; ///< --sm-threads sweep (may be empty)
    std::string sha = "unknown";
    std::string host = "unknown";
    std::string out_path;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--apps" && i + 1 < args.size()) {
            apps = splitCommas(args[++i]);
        } else if (arg == "--configs" && i + 1 < args.size()) {
            configs.clear();
            for (const auto &name : splitCommas(args[++i])) {
                PaperConfig which;
                if (!parseConfig(name, &which))
                    fatal("unknown config '%s'", name.c_str());
                configs.push_back(which);
            }
        } else if (arg == "--reps" && i + 1 < args.size()) {
            reps = std::atoi(args[++i].c_str());
        } else if (arg == "--sm-threads" && i + 1 < args.size()) {
            for (const auto &tok : splitCommas(args[++i])) {
                int t = std::atoi(tok.c_str());
                if (t <= 0)
                    return usage();
                sm_threads.push_back(t);
            }
            if (sm_threads.empty())
                return usage();
        } else if (arg == "--full-size") {
            full_size = true;
        } else if (arg == "--sha" && i + 1 < args.size()) {
            sha = args[++i];
        } else if (arg == "--host" && i + 1 < args.size()) {
            host = args[++i];
        } else if (arg == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else {
            return usage();
        }
    }
    if (configs.empty() || reps <= 0)
        return usage();
    if (apps.empty())
        for (const auto &b : workloads::suite())
            apps.push_back(b.name);

    std::vector<harness::ConfigSpec> specs;
    for (PaperConfig which : configs)
        specs.push_back(full_size ? harness::makeFullSizeConfig(which)
                                  : harness::makeConfig(which));

    struct Row
    {
        std::string app;
        std::string config;
        uint64_t cycles = 0; ///< simulated cycles, one benchmark sweep
        // Wall seconds per clock: sum over kernels of the best (min)
        // rep — the repeatable cost on a noisy shared host, where mean
        // or sum would fold scheduler jitter into the comparison.
        double ref_s = 0.0;
        double skip_s = 0.0;
        // --sm-threads sweep: wall seconds per requested thread count
        // (cycle-skip clock), same best-of-reps accounting.
        std::vector<double> scale_s;
    };
    std::vector<Row> rows;
    using Clock = std::chrono::steady_clock;
    for (const auto &spec : specs) {
        for (const auto &app : apps) {
            const workloads::BenchmarkDef &bench =
                workloads::benchmark(app);
            Row row;
            row.app = app;
            row.config = spec.name;
            row.scale_s.assign(sm_threads.size(), 0.0);
            for (const auto &mix : bench.kernels) {
                // Warm-up pass (untimed): compiles the kernel, settles
                // the profitability decision, and verifies the output —
                // the timed loops below rerun exactly the program the
                // matrix would run, with simulation as the only work.
                mem::GlobalMemory warm_gmem;
                workloads::BuiltKernel warm_k = mix.build(warm_gmem);
                harness::KernelResult kr =
                    harness::runKernel(spec, warm_k, warm_gmem);
                sim::GpuConfig gpu = spec.gpu;
                if (warm_k.isGemm && spec.gemmIdealMapping)
                    gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
                uint64_t ref_cycles = 0;
                uint64_t skip_cycles = 0;
                for (int mode = 0; mode < 2; ++mode) {
                    bool skip = mode == 1;
                    gpu.clockMode = skip ? sim::ClockMode::CycleSkip
                                         : sim::ClockMode::Reference;
                    double best = std::numeric_limits<double>::infinity();
                    for (int r = 0; r < reps; ++r) {
                        mem::GlobalMemory gmem;
                        workloads::BuiltKernel k = mix.build(gmem);
                        auto t0 = Clock::now();
                        sim::RunStats stats = sim::runProgram(
                            gpu, gmem, kr.compiled, k.grid, k.params);
                        std::chrono::duration<double> dt =
                            Clock::now() - t0;
                        best = std::min(best, dt.count());
                        (skip ? skip_cycles : ref_cycles) = stats.cycles;
                    }
                    (skip ? row.skip_s : row.ref_s) += best;
                }
                wasp_check(ref_cycles == skip_cycles,
                           "%s/%s kernel '%s': clock modes disagree "
                           "(reference %llu cycles, cycle-skip %llu)",
                           app.c_str(), spec.name.c_str(),
                           mix.label.c_str(),
                           static_cast<unsigned long long>(ref_cycles),
                           static_cast<unsigned long long>(skip_cycles));
                // --sm-threads sweep: retime the cycle-skip clock at
                // each thread count; every run must land on the same
                // simulated cycle count (the determinism contract).
                gpu.clockMode = sim::ClockMode::CycleSkip;
                for (size_t ti = 0; ti < sm_threads.size(); ++ti) {
                    gpu.smParallelism = sm_threads[ti];
                    double best = std::numeric_limits<double>::infinity();
                    uint64_t par_cycles = 0;
                    for (int r = 0; r < reps; ++r) {
                        mem::GlobalMemory gmem;
                        workloads::BuiltKernel k = mix.build(gmem);
                        auto t0 = Clock::now();
                        sim::RunStats stats = sim::runProgram(
                            gpu, gmem, kr.compiled, k.grid, k.params);
                        std::chrono::duration<double> dt =
                            Clock::now() - t0;
                        best = std::min(best, dt.count());
                        par_cycles = stats.cycles;
                    }
                    wasp_check(par_cycles == skip_cycles,
                               "%s/%s kernel '%s': --sm-threads=%d "
                               "diverged (%llu cycles vs %llu serial)",
                               app.c_str(), spec.name.c_str(),
                               mix.label.c_str(), sm_threads[ti],
                               static_cast<unsigned long long>(par_cycles),
                               static_cast<unsigned long long>(
                                   skip_cycles));
                    row.scale_s[ti] += best;
                }
                gpu.smParallelism = 1;
                row.cycles += ref_cycles;
            }
            std::fprintf(stderr,
                         "perf: %-12s %-18s %9llu cycles  "
                         "ref %6.3fs  skip %6.3fs  speedup %.2fx\n",
                         app.c_str(), spec.name.c_str(),
                         static_cast<unsigned long long>(row.cycles),
                         row.ref_s, row.skip_s,
                         row.skip_s > 0.0 ? row.ref_s / row.skip_s : 0.0);
            rows.push_back(std::move(row));
        }
    }

    std::ostringstream js;
    js << "{\n";
    js << "  \"bench\": \"sim_throughput\",\n";
    js << "  \"unit\": \"cycles_per_second\",\n";
    js << "  \"git_sha\": \"" << sha << "\",\n";
    js << "  \"host\": \"" << host << "\",\n";
    js << "  \"reps\": " << reps << ",\n";
    js << "  \"full_size\": " << (full_size ? "true" : "false") << ",\n";
    js << "  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        double n = static_cast<double>(reps);
        double ref_cps =
            r.ref_s > 0.0 ? static_cast<double>(r.cycles) * n / r.ref_s
                          : 0.0;
        double skip_cps =
            r.skip_s > 0.0 ? static_cast<double>(r.cycles) * n / r.skip_s
                           : 0.0;
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "    {\"benchmark\": \"%s\", \"config\": \"%s\", "
                      "\"cycles\": %llu, "
                      "\"reference_seconds\": %.6f, "
                      "\"skip_seconds\": %.6f, "
                      "\"reference_cps\": %.0f, \"skip_cps\": %.0f, "
                      "\"speedup\": %.3f",
                      r.app.c_str(), r.config.c_str(),
                      static_cast<unsigned long long>(r.cycles),
                      r.ref_s / n, r.skip_s / n, ref_cps, skip_cps,
                      skip_cps > 0.0 && ref_cps > 0.0
                          ? skip_cps / ref_cps
                          : 0.0);
        js << buf;
        if (!sm_threads.empty()) {
            // Per-thread-count scaling (cycle-skip clock), speedup
            // relative to the sweep's first entry.
            js << ", \"sm_scaling\": [";
            double base_s = r.scale_s.empty() ? 0.0 : r.scale_s[0];
            for (size_t ti = 0; ti < sm_threads.size(); ++ti) {
                double s = r.scale_s[ti];
                double cps = s > 0.0
                                 ? static_cast<double>(r.cycles) / s
                                 : 0.0;
                std::snprintf(buf, sizeof(buf),
                              "%s{\"threads\": %d, \"seconds\": %.6f, "
                              "\"cps\": %.0f, \"speedup\": %.3f}",
                              ti ? ", " : "", sm_threads[ti], s, cps,
                              s > 0.0 ? base_s / s : 0.0);
                js << buf;
            }
            js << "]";
        }
        js << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";

    if (out_path.empty()) {
        std::printf("%s", js.str().c_str());
    } else {
        std::ofstream out(out_path);
        if (!out)
            fatal("cannot write '%s'", out_path.c_str());
        out << js.str();
        std::fprintf(stderr, "perf: wrote %s\n", out_path.c_str());
    }
    return 0;
}

/** Write to `path`, or to stdout when `path` is empty. */
void
writeOut(const std::string &path, const std::string &content,
         const char *what)
{
    if (path.empty()) {
        std::printf("%s", content.c_str());
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << content;
    std::fprintf(stderr, "%s: wrote %s\n", what, path.c_str());
}

int
cmdStats(const std::string &bench_name,
         const std::vector<std::string> &args)
{
    harness::PaperConfig which = harness::PaperConfig::WaspGpu;
    bool json = false;
    bool timeline = false;
    std::string out_path;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--config" && i + 1 < args.size()) {
            if (!parseConfig(args[++i], &which))
                fatal("unknown config '%s'", args[i].c_str());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--timeline") {
            timeline = true;
        } else if (arg == "-o" && i + 1 < args.size()) {
            out_path = args[++i];
        } else {
            return usage();
        }
    }
    harness::ConfigSpec spec = harness::makeConfig(which);
    const workloads::BenchmarkDef &bench =
        workloads::benchmark(bench_name);

    struct KernelStats
    {
        std::string label;
        double weight;
        sim::RunStats stats;
    };
    std::vector<KernelStats> kernels;
    for (const auto &mix : bench.kernels) {
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        harness::KernelResult kr = harness::runKernel(spec, k, gmem);
        kernels.push_back({mix.label, mix.weight, std::move(kr.stats)});
    }

    if (json) {
        JsonWriter w;
        w.beginObject()
            .key("benchmark").value(bench.name)
            .key("config").value(spec.name)
            .key("kernels").beginArray();
        for (const auto &ks : kernels) {
            w.beginObject()
                .key("label").value(ks.label)
                .key("weight").value(ks.weight)
                .key("stats");
            sim::writeRunStats(w, ks.stats);
            w.endObject();
        }
        w.endArray().endObject();
        writeOut(out_path, w.str() + "\n", "stats");
        return 0;
    }

    std::ostringstream os;
    os << "benchmark " << bench.name << "  config " << spec.name << "\n";
    for (const auto &ks : kernels) {
        const sim::RunStats &s = ks.stats;
        os << "\nkernel " << ks.label << "  (weight "
           << harness::fmtDouble(ks.weight, 2) << ")\n";
        os << "  cycles            " << s.cycles << "\n";
        os << "  outcome           " << sim::outcomeName(s.outcome)
           << "\n";
        os << "  dyn instructions  " << s.totalDynInstrs() << "\n";
        uint64_t slots = s.issueSlotTotal();
        os << "  issue slots       " << slots << "\n";
        for (size_t r = 0; r < sim::kNumStallReasons; ++r) {
            if (s.stallCycles[r] == 0)
                continue;
            double share =
                slots > 0 ? static_cast<double>(s.stallCycles[r]) /
                                static_cast<double>(slots)
                          : 0.0;
            char line[128];
            std::snprintf(line, sizeof(line), "    %-18s %12llu  %5.1f%%\n",
                          sim::stallReasonName(
                              static_cast<sim::StallReason>(r)),
                          static_cast<unsigned long long>(
                              s.stallCycles[r]),
                          share * 100.0);
            os << line;
        }
        os << "  stage issues     ";
        for (uint64_t v : s.stageIssues)
            os << " " << v;
        os << "\n";
        os << "  L1 hit rate       "
           << harness::fmtPercent(s.l1HitRate(), 1) << "\n";
        os << "  L2 utilization    "
           << harness::fmtPercent(s.l2Utilization(), 1) << "\n";
        os << "  DRAM utilization  "
           << harness::fmtPercent(s.dramUtilization(), 1) << "\n";
        for (const auto &[name, d] : s.detail.dists()) {
            char line[160];
            std::snprintf(line, sizeof(line),
                          "  %-24s n=%llu mean=%.2f min=%llu max=%llu\n",
                          name.c_str(),
                          static_cast<unsigned long long>(d.count()),
                          d.mean(),
                          static_cast<unsigned long long>(d.min()),
                          static_cast<unsigned long long>(d.max()));
            os << line;
        }
        if (timeline && !s.timeline.empty()) {
            os << "  timeline (cycle tensorUtil l2Util)\n";
            for (const auto &sample : s.timeline) {
                char line[96];
                std::snprintf(line, sizeof(line),
                              "    %10llu  %5.3f  %5.3f\n",
                              static_cast<unsigned long long>(
                                  sample.cycle),
                              sample.tensorUtil, sample.l2Util);
                os << line;
            }
        }
    }
    writeOut(out_path, os.str(), "stats");
    return 0;
}

// ---- analyze: static performance prediction --------------------------

/** Spearman rank correlation of two stall-share vectors over the work
 * buckets (ties get average ranks). Returns 0 when either side is
 * all-zero. */
double
spearmanWorkBuckets(
    const std::array<double, sim::kNumStallReasons> &a,
    const std::array<double, sim::kNumStallReasons> &b)
{
    std::vector<size_t> idx;
    for (size_t i = 0; i < sim::kNumStallReasons; ++i) {
        auto r = static_cast<sim::StallReason>(i);
        if (r == sim::StallReason::Issued ||
            r == sim::StallReason::Ready ||
            r == sim::StallReason::NoStack ||
            r == sim::StallReason::NoWarp)
            continue;
        idx.push_back(i);
    }
    auto ranksOf = [&](const std::array<double,
                                        sim::kNumStallReasons> &v) {
        std::vector<size_t> order(idx.size());
        for (size_t k = 0; k < order.size(); ++k)
            order[k] = k;
        std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
            return v[idx[x]] < v[idx[y]];
        });
        std::vector<double> rank(idx.size(), 0.0);
        size_t k = 0;
        while (k < order.size()) {
            size_t j = k;
            while (j + 1 < order.size() &&
                   v[idx[order[j + 1]]] == v[idx[order[k]]])
                ++j;
            double avg = (static_cast<double>(k) +
                          static_cast<double>(j)) / 2.0;
            for (size_t t = k; t <= j; ++t)
                rank[order[t]] = avg;
            k = j + 1;
        }
        return rank;
    };
    std::vector<double> ra = ranksOf(a);
    std::vector<double> rb = ranksOf(b);
    double n = static_cast<double>(ra.size());
    double ma = 0.0;
    double mb = 0.0;
    for (size_t k = 0; k < ra.size(); ++k) {
        ma += ra[k];
        mb += rb[k];
    }
    ma /= n;
    mb /= n;
    double num = 0.0;
    double da = 0.0;
    double db = 0.0;
    for (size_t k = 0; k < ra.size(); ++k) {
        num += (ra[k] - ma) * (rb[k] - mb);
        da += (ra[k] - ma) * (ra[k] - ma);
        db += (rb[k] - mb) * (rb[k] - mb);
    }
    if (da <= 0.0 || db <= 0.0)
        return 0.0;
    return num / std::sqrt(da * db);
}

/**
 * Predict one kernel under one config, mirroring runKernel's compile
 * decisions with the static profitability check in place of the
 * measured one (the autotuner cost-function hook: rank candidate
 * programs by PerfPrediction::predictedCycles).
 */
struct KernelPrediction
{
    compiler::PerfPrediction pred;
    /** Plan summary of the compiled form (empty when the original
     * program was kept). */
    std::string plan;
    int searchCandidates = 0;
    bool keptTransform = false;
};

KernelPrediction
predictKernelFull(const harness::ConfigSpec &spec,
                  const workloads::BuiltKernel &k)
{
    bool transform = spec.compileNonGemm || k.isGemm;
    compiler::CompileOptions copts = spec.copts;
    if (k.isGemm)
        copts.tile = true;
    sim::GpuConfig gpu = spec.gpu;
    if (k.isGemm && spec.gemmIdealMapping)
        gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
    compiler::MachineModel m = harness::machineModel(gpu);
    compiler::LaunchInfo launch{k.grid, k.params};

    // Feedback corrections (tune rounds) price both sides of the
    // profitability comparison, so the choice is made under one model.
    const compiler::AnalyzeHints hints{{}, copts.feedback};
    KernelPrediction out;
    compiler::PerfPrediction orig =
        compiler::analyzeProgram(k.prog, m, launch, hints);
    if (!transform) {
        out.pred = std::move(orig);
        return out;
    }
    // The compile context carries the machine and launch so a Search
    // strategy scores its candidates against the same model this
    // prediction uses.
    compiler::CompileContext cctx;
    cctx.machine = m;
    cctx.launch = launch;
    compiler::CompileResult cr =
        compiler::warpSpecialize(k.prog, copts, cctx);
    if (!cr.report.transformed || !cr.report.verified) {
        out.pred = std::move(orig);
        return out;
    }
    out.plan = cr.report.plan;
    out.searchCandidates = cr.report.searchCandidates;
    compiler::PerfPrediction tr =
        compiler::analyzeProgram(cr.program, m, launch, hints);
    // GEMM under a non-compiling config keeps the pipeline
    // unconditionally (the CUTLASS model); elsewhere the predicted
    // cycle counts decide profitability, mirroring the harness's
    // measured back-to-back comparison.
    if (!spec.compileNonGemm) {
        out.pred = std::move(tr);
        out.keptTransform = true;
        return out;
    }
    if (tr.predictedCycles < orig.predictedCycles) {
        out.pred = std::move(tr);
        out.keptTransform = true;
        return out;
    }
    orig.notes.push_back(strprintf(
        "specialization predicted unprofitable (%.0f vs %.0f cycles%s); "
        "original kept",
        tr.predictedCycles, orig.predictedCycles,
        tr.allAffine ? "" : ", non-affine trip count"));
    orig.notes.push_back("pipeline: " + tr.diagnosis);
    out.pred = std::move(orig);
    out.plan.clear();
    return out;
}

compiler::PerfPrediction
predictKernel(const harness::ConfigSpec &spec,
              const workloads::BuiltKernel &k)
{
    return predictKernelFull(spec, k).pred;
}

/**
 * Derive measured trip-count hints for a prediction's non-affine
 * stages from the simulator's per-stage issue counters: a stage's
 * total issue slots ≈ grid × warps × issueCost × trips, so the
 * measured trip count falls out by division. Affine (derived) bounds
 * are left alone — hints fill the model's data-dependent blind spot,
 * they never override facts the analysis proved.
 */
compiler::TripHints
tripHintsFromStats(const compiler::PerfPrediction &pred,
                   const sim::RunStats &stats, int grid)
{
    compiler::TripHints hints;
    for (const auto &st : pred.stages) {
        if (st.tripsAffine || st.issueCost <= 0.0 || st.stage < 0)
            continue;
        size_t s = static_cast<size_t>(st.stage);
        if (s >= stats.stageIssues.size())
            continue;
        double denom = static_cast<double>(std::max(1, grid)) *
                       std::max(1, st.warps) * st.issueCost;
        hints.stageTrips[st.stage] = std::max(
            1.0, static_cast<double>(stats.stageIssues[s]) / denom);
    }
    return hints;
}

int
cmdAnalyze(const std::string &bench_arg,
           const std::vector<std::string> &args)
{
    std::vector<harness::PaperConfig> configs = {
        harness::PaperConfig::Baseline, harness::PaperConfig::WaspGpu};
    bool json = false;
    bool vs_sim = false;
    int jobs = 0;
    std::string out_path;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if ((arg == "--configs" || arg == "--config") &&
            i + 1 < args.size()) {
            configs.clear();
            for (const auto &name : splitCommas(args[++i])) {
                harness::PaperConfig which;
                if (!parseConfig(name, &which))
                    fatal("unknown config '%s'", name.c_str());
                configs.push_back(which);
            }
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--vs-sim") {
            vs_sim = true;
        } else if (arg == "-j" && i + 1 < args.size()) {
            jobs = std::atoi(args[++i].c_str());
        } else if (arg == "-o" && i + 1 < args.size()) {
            out_path = args[++i];
        } else {
            return usage();
        }
    }
    if (configs.empty())
        return usage();

    std::vector<std::string> apps;
    if (bench_arg == "--all") {
        for (const auto &b : workloads::suite())
            apps.push_back(b.name);
    } else {
        apps.push_back(workloads::benchmark(bench_arg).name);
    }
    std::vector<harness::ConfigSpec> specs;
    specs.reserve(configs.size());
    for (auto which : configs)
        specs.push_back(harness::makeConfig(which));

    struct Cell
    {
        std::string bench;
        std::string config;
        std::array<double, sim::kNumStallReasons> slots{};
        double cycles = 0.0;
        /** Weighted cycles with measured trip hints substituted for
         * assumed bounds (== cycles for fully-affine kernels). */
        double hintedCycles = 0.0;
        int hintedKernels = 0;
        double errAssumedSum = 0.0;
        double errHintedSum = 0.0;
        std::vector<std::pair<std::string, std::string>> kernelDiag;
    };
    std::vector<Cell> cells;
    for (const auto &spec : specs) {
        for (const auto &app : apps) {
            const workloads::BenchmarkDef &bench =
                workloads::benchmark(app);
            Cell c;
            c.bench = bench.name;
            c.config = spec.name;
            for (const auto &mix : bench.kernels) {
                mem::GlobalMemory gmem;
                workloads::BuiltKernel k = mix.build(gmem);
                compiler::PerfPrediction pred = predictKernel(spec, k);
                std::string diag = pred.diagnosis;
                for (const auto &note : pred.notes)
                    diag += " [" + note + "]";
                double hinted_cycles = pred.predictedCycles;
                // Under --vs-sim, kernels with assumed (non-affine)
                // trip counts get a second prediction with the
                // measured trips fed back as TripHints, quantifying
                // how much of the model's cycle error the assumption
                // is responsible for.
                if (vs_sim && !pred.allAffine) {
                    sim::GpuConfig gpu = spec.gpu;
                    if (k.isGemm && spec.gemmIdealMapping)
                        gpu.mapPolicy =
                            sim::WarpMapPolicy::GroupPipeline;
                    compiler::MachineModel m =
                        harness::machineModel(gpu);
                    compiler::LaunchInfo launch{k.grid, k.params};
                    harness::KernelResult kr =
                        harness::runKernel(spec, k, gmem);
                    compiler::PerfPrediction base =
                        compiler::analyzeProgram(kr.compiled, m,
                                                 launch);
                    compiler::TripHints th =
                        tripHintsFromStats(base, kr.stats, k.grid);
                    if (!th.empty() && kr.stats.cycles > 0) {
                        compiler::PerfPrediction hp =
                            compiler::analyzeProgram(kr.compiled, m,
                                                     launch, {th, {}});
                        double meas =
                            static_cast<double>(kr.stats.cycles);
                        double err_a =
                            std::fabs(base.predictedCycles - meas) /
                            meas;
                        double err_h =
                            std::fabs(hp.predictedCycles - meas) /
                            meas;
                        hinted_cycles = hp.predictedCycles;
                        ++c.hintedKernels;
                        c.errAssumedSum += err_a;
                        c.errHintedSum += err_h;
                        std::string hs;
                        for (const auto &[sid, tv] : th.stageTrips)
                            hs += strprintf("%ss%d=%.0f",
                                            hs.empty() ? "" : ",",
                                            sid, tv);
                        diag += strprintf(
                            " [vs-sim trips %s: cycle err "
                            "%.2f -> %.2f]",
                            hs.c_str(), err_a, err_h);
                    }
                }
                for (size_t i = 0; i < pred.stallSlots.size(); ++i)
                    c.slots[i] += mix.weight * pred.stallSlots[i];
                c.cycles += mix.weight * pred.predictedCycles;
                c.hintedCycles += mix.weight * hinted_cycles;
                c.kernelDiag.emplace_back(mix.label, diag);
            }
            cells.push_back(std::move(c));
        }
    }

    std::vector<harness::BenchResult> measured;
    if (vs_sim)
        measured = harness::runMatrix(specs, apps, jobs);

    auto bucketName = [](int b) {
        return b < 0 ? "none"
                     : sim::stallReasonName(
                           static_cast<sim::StallReason>(b));
    };

    struct Summary
    {
        int cells = 0;
        int matches = 0;
        double corrSum = 0.0;
        int hintKernels = 0;
        double errAssumedSum = 0.0;
        double errHintedSum = 0.0;
    };
    std::map<std::string, Summary> summary;

    JsonWriter w;
    std::ostringstream os;
    if (json) {
        w.beginObject()
            .key("bench").value("predicted_stalls")
            .key("unit").value("weighted_issue_slots")
            .key("vsSim").value(vs_sim)
            .key("results").beginArray();
    } else {
        os << "static stall prediction";
        if (vs_sim)
            os << " vs simulator";
        os << "\n";
    }
    for (size_t ci = 0; ci < cells.size(); ++ci) {
        const Cell &c = cells[ci];
        int ptop = compiler::topWorkBucket(c.slots);
        const harness::BenchResult *mr =
            vs_sim ? &measured[ci] : nullptr;
        int mtop = mr ? compiler::topWorkBucket(mr->stallCycles) : -1;
        bool ok = mr && mr->outcome == sim::RunOutcome::Ok;
        bool match = ok && ptop == mtop;
        double corr =
            ok ? spearmanWorkBuckets(c.slots, mr->stallCycles) : 0.0;
        if (mr) {
            Summary &s = summary[c.config];
            ++s.cells;
            s.matches += match ? 1 : 0;
            s.corrSum += corr;
            s.hintKernels += c.hintedKernels;
            s.errAssumedSum += c.errAssumedSum;
            s.errHintedSum += c.errHintedSum;
        }
        if (json) {
            w.beginObject()
                .key("benchmark").value(c.bench)
                .key("config").value(c.config)
                .key("predictedCycles").value(c.cycles)
                .key("predictedTop").value(bucketName(ptop));
            w.key("predicted").beginObject();
            for (size_t i = 0; i < c.slots.size(); ++i)
                if (c.slots[i] > 0.0)
                    w.key(sim::stallReasonName(
                              static_cast<sim::StallReason>(i)))
                        .value(c.slots[i]);
            w.endObject();
            if (mr) {
                w.key("measuredCycles").value(mr->weightedCycles)
                    .key("measuredTop").value(bucketName(mtop))
                    .key("outcome")
                    .value(sim::outcomeName(mr->outcome))
                    .key("topMatch").value(match)
                    .key("rankCorr").value(corr)
                    .key("hintedCycles").value(c.hintedCycles)
                    .key("tripHintedKernels").value(c.hintedKernels);
                w.key("measured").beginObject();
                for (size_t i = 0; i < mr->stallCycles.size(); ++i)
                    if (mr->stallCycles[i] > 0.0)
                        w.key(sim::stallReasonName(
                                  static_cast<sim::StallReason>(i)))
                            .value(mr->stallCycles[i]);
                w.endObject();
            }
            w.key("kernels").beginArray();
            for (const auto &[label, diag] : c.kernelDiag) {
                w.beginObject()
                    .key("label").value(label)
                    .key("diagnosis").value(diag)
                    .endObject();
            }
            w.endArray();
            w.endObject();
        } else {
            char line[256];
            if (mr) {
                std::snprintf(line, sizeof(line),
                              "%-14s %-10s predicted %-12s measured "
                              "%-12s %s  corr %.2f\n",
                              c.bench.c_str(), c.config.c_str(),
                              bucketName(ptop), bucketName(mtop),
                              match ? "MATCH" : "miss ", corr);
            } else {
                std::snprintf(line, sizeof(line),
                              "%-14s %-10s predicted %-12s "
                              "(%.0f cycles)\n",
                              c.bench.c_str(), c.config.c_str(),
                              bucketName(ptop), c.cycles);
            }
            os << line;
            for (const auto &[label, diag] : c.kernelDiag)
                os << "    " << label << ": " << diag << "\n";
        }
    }
    if (json) {
        w.endArray();
        w.key("summary").beginArray();
        for (const auto &[config, s] : summary) {
            w.beginObject()
                .key("config").value(config)
                .key("cells").value(s.cells)
                .key("topMatches").value(s.matches)
                .key("matchRate")
                .value(s.cells ? static_cast<double>(s.matches) /
                                     s.cells
                               : 0.0)
                .key("meanRankCorr")
                .value(s.cells ? s.corrSum / s.cells : 0.0)
                .key("tripHintedKernels").value(s.hintKernels)
                .key("cycleErrAssumed")
                .value(s.hintKernels
                           ? s.errAssumedSum / s.hintKernels
                           : 0.0)
                .key("cycleErrHinted")
                .value(s.hintKernels ? s.errHintedSum / s.hintKernels
                                     : 0.0)
                .endObject();
        }
        w.endArray().endObject();
        writeOut(out_path, w.str() + "\n", "analyze");
    } else {
        for (const auto &[config, s] : summary) {
            char line[240];
            std::snprintf(line, sizeof(line),
                          "%s: top bucket matched %d/%d cells, mean "
                          "rank corr %.2f\n",
                          config.c_str(), s.matches, s.cells,
                          s.cells ? s.corrSum / s.cells : 0.0);
            os << line;
            if (s.hintKernels > 0) {
                std::snprintf(
                    line, sizeof(line),
                    "%s: trip hints on %d kernel(s), mean cycle err "
                    "%.2f assumed -> %.2f hinted\n",
                    config.c_str(), s.hintKernels,
                    s.errAssumedSum / s.hintKernels,
                    s.errHintedSum / s.hintKernels);
                os << line;
            }
        }
        writeOut(out_path, os.str(), "analyze");
    }
    return 0;
}

/** Share of one stall bucket in an issue-slot accounting array. */
double
bucketShare(const std::array<double, sim::kNumStallReasons> &slots,
            sim::StallReason which)
{
    double total = 0.0;
    for (double v : slots)
        total += v;
    return total > 0.0 ? slots[static_cast<size_t>(which)] / total : 0.0;
}

/** One compile→simulate round of the autotune loop for one benchmark. */
struct TuneRound
{
    std::string specName;
    compiler::RateCorrections corr;
    double predictedCycles = 0.0;
    double predictedPeriod = 0.0; ///< weighted steady-state period
    std::array<double, sim::kNumStallReasons> predictedSlots{};
    std::string plan;
    int searchCandidates = 0;
    harness::BenchResult measured;
    /** Measured-minus-predicted share deltas of the feedback buckets. */
    double dQueueEmpty = 0.0;
    double dQueueFull = 0.0;
    double dScoreboard = 0.0;
};

/** In-process prediction half of a tune round: mirror the harness's
 * compile decisions under the round's options and aggregate with the
 * Table II mix weights. */
void
predictTuneRound(const harness::ConfigSpec &spec,
                 const workloads::BenchmarkDef &bench, TuneRound *r)
{
    for (const auto &mix : bench.kernels) {
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        KernelPrediction kp = predictKernelFull(spec, k);
        r->predictedCycles += mix.weight * kp.pred.predictedCycles;
        r->predictedPeriod += mix.weight * kp.pred.period;
        for (size_t i = 0; i < kp.pred.stallSlots.size(); ++i)
            r->predictedSlots[i] += mix.weight * kp.pred.stallSlots[i];
        r->searchCandidates += kp.searchCandidates;
        if (!kp.plan.empty()) {
            if (!r->plan.empty())
                r->plan += " | ";
            r->plan += mix.label + ": " + kp.plan;
        }
    }
}

/** Fill the round's measured-vs-predicted stall-share deltas. */
void
tuneRoundDeltas(TuneRound *r)
{
    if (r->measured.outcome != sim::RunOutcome::Ok)
        return;
    r->dQueueEmpty =
        bucketShare(r->measured.stallCycles, sim::StallReason::QueueEmpty) -
        bucketShare(r->predictedSlots, sim::StallReason::QueueEmpty);
    r->dQueueFull =
        bucketShare(r->measured.stallCycles, sim::StallReason::QueueFull) -
        bucketShare(r->predictedSlots, sim::StallReason::QueueFull);
    r->dScoreboard =
        bucketShare(r->measured.stallCycles, sim::StallReason::Scoreboard) -
        bucketShare(r->predictedSlots, sim::StallReason::Scoreboard);
}

/** Convergence: the model and the simulator agree on the feedback
 * buckets to within two share points, so another correction round has
 * no signal to act on. */
bool
tuneConverged(const TuneRound &r)
{
    constexpr double kTol = 0.02;
    return std::fabs(r.dQueueEmpty) < kTol &&
           std::fabs(r.dQueueFull) < kTol &&
           std::fabs(r.dScoreboard) < kTol;
}

void
tuneRoundJson(JsonWriter &w, const char *key, const TuneRound &r)
{
    bool ok = r.measured.outcome == sim::RunOutcome::Ok;
    w.key(key).beginObject()
        .key("spec").value(r.specName)
        .key("predictedCycles").value(r.predictedCycles)
        .key("outcome").value(sim::outcomeName(r.measured.outcome));
    if (ok) {
        w.key("measuredCycles").value(r.measured.weightedCycles)
            .key("queueEmptyShare")
            .value(bucketShare(r.measured.stallCycles,
                               sim::StallReason::QueueEmpty))
            .key("queueFullShare")
            .value(bucketShare(r.measured.stallCycles,
                               sim::StallReason::QueueFull))
            .key("scoreboardShare")
            .value(bucketShare(r.measured.stallCycles,
                               sim::StallReason::Scoreboard));
    }
    if (!r.plan.empty())
        w.key("plan").value(r.plan);
    if (r.searchCandidates > 0)
        w.key("searchCandidates").value(r.searchCandidates);
    if (r.corr.any()) {
        w.key("corrections").beginObject()
            .key("producerPenalty").value(r.corr.producerPenalty)
            .key("consumerPenalty").value(r.corr.consumerPenalty)
            .key("chainScale").value(r.corr.chainScale)
            .endObject();
    }
    w.endObject();
}

int
cmdTune(const std::string &bench_arg,
        const std::vector<std::string> &args)
{
    harness::PaperConfig which = harness::PaperConfig::WaspGpu;
    int max_rounds = 3;
    bool json = false;
    std::string out_path;
    harness::MatrixOptions mopts;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--config" && i + 1 < args.size()) {
            if (!parseConfig(args[++i], &which))
                fatal("unknown config '%s'", args[i].c_str());
        } else if (arg == "--rounds" && i + 1 < args.size()) {
            max_rounds = std::atoi(args[++i].c_str());
            if (max_rounds < 0)
                return usage();
        } else if (arg.rfind("--cache=", 0) == 0) {
            mopts.cacheDir = arg.substr(std::strlen("--cache="));
            if (mopts.cacheDir.empty())
                return usage();
        } else if (arg.rfind("--budget-wall-ms=", 0) == 0) {
            mopts.budget.wallMs = std::strtoull(
                arg.c_str() + std::strlen("--budget-wall-ms="), nullptr,
                10);
        } else if (arg == "-j" && i + 1 < args.size()) {
            mopts.jobs = std::atoi(args[++i].c_str());
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            mopts.jobs = std::atoi(arg.c_str() + 2);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "-o" && i + 1 < args.size()) {
            out_path = args[++i];
        } else {
            return usage();
        }
    }

    std::vector<std::string> apps;
    if (bench_arg == "--all") {
        for (const auto &b : workloads::suite())
            apps.push_back(b.name);
    } else {
        apps.push_back(workloads::benchmark(bench_arg).name);
    }

    harness::ConfigSpec base = harness::makeConfig(which);
    // The searched spec gets a distinct name: the name is cache and
    // replay identity, so searched cells never collide with (and never
    // shadow) heuristic cells in a shared --cache directory.
    harness::ConfigSpec searched = base;
    searched.name += "+search";
    searched.copts.strategy = compiler::PartitionStrategy::Search;

    // Heuristic and uncorrected-search rounds share options across
    // benchmarks, so both measure as one fault-isolated matrix sweep
    // (parallel across benchmarks under -j).
    std::vector<harness::BenchResult> mh = [&] {
        TELEM_SPAN("tune.sweep.heuristic");
        return harness::runMatrix({base}, apps, mopts);
    }();
    std::vector<harness::BenchResult> ms = [&] {
        TELEM_SPAN("tune.sweep.search");
        return harness::runMatrix({searched}, apps, mopts);
    }();

    struct BenchTune
    {
        std::string name;
        TuneRound heuristic;
        TuneRound search;
        std::vector<TuneRound> tuneRounds;
        /** 0 = heuristic, 1 = search round, i>=2 = tuneRounds[i-2]. */
        size_t tunedIdx = 0;
        bool converged = false;
    };
    std::vector<BenchTune> tuned;

    for (size_t bi = 0; bi < apps.size(); ++bi) {
        const workloads::BenchmarkDef &bench =
            workloads::benchmark(apps[bi]);
        BenchTune bt;
        bt.name = bench.name;
        bt.heuristic.specName = base.name;
        predictTuneRound(base, bench, &bt.heuristic);
        bt.heuristic.measured = mh[bi];
        tuneRoundDeltas(&bt.heuristic);

        bt.search.specName = searched.name;
        predictTuneRound(searched, bench, &bt.search);
        bt.search.measured = ms[bi];
        tuneRoundDeltas(&bt.search);

        // Feedback rounds: fold the previous round's stall-share
        // misprediction into rate-graph cost corrections and
        // re-search under the corrected model. The penalty scale is
        // the predicted period: a share delta converts to cycles per
        // pipeline item.
        compiler::RateCorrections corr;
        const TuneRound *prev = &bt.search;
        bt.converged = tuneConverged(bt.search);
        for (int r = 1; r <= max_rounds && !bt.converged; ++r) {
            if (prev->measured.outcome != sim::RunOutcome::Ok)
                break;
            telem::Span round_span("tune.round");
            round_span.attr("benchmark", bench.name);
            round_span.attr("round", r);
            double scale = std::max(prev->predictedPeriod, 1.0);
            corr.producerPenalty =
                std::max(0.0, corr.producerPenalty +
                                  prev->dQueueEmpty * scale);
            corr.consumerPenalty =
                std::max(0.0, corr.consumerPenalty +
                                  prev->dQueueFull * scale);
            corr.chainScale =
                std::min(4.0, std::max(0.25, corr.chainScale *
                                                 (1.0 +
                                                  prev->dScoreboard)));
            harness::ConfigSpec spec = base;
            spec.name += "+tune" + std::to_string(r);
            spec.copts.strategy = compiler::PartitionStrategy::Search;
            spec.copts.feedback = corr;
            TuneRound t;
            t.specName = spec.name;
            t.corr = corr;
            predictTuneRound(spec, bench, &t);
            t.measured =
                harness::runMatrix({spec}, {bench.name}, mopts)[0];
            tuneRoundDeltas(&t);
            bt.converged = tuneConverged(t);
            bt.tuneRounds.push_back(std::move(t));
            prev = &bt.tuneRounds.back();
        }

        // The tuned pick is the best *measured* round — including the
        // heuristic baseline, so the autotuner never ships a measured
        // regression. Measurement is ground truth; the corrected model
        // only steered the search.
        bt.tunedIdx = 0;
        auto roundAt = [&](size_t idx) -> const TuneRound & {
            if (idx == 0)
                return bt.heuristic;
            if (idx == 1)
                return bt.search;
            return bt.tuneRounds[idx - 2];
        };
        auto cyclesOf = [&](size_t idx) {
            const TuneRound &t = roundAt(idx);
            return t.measured.outcome == sim::RunOutcome::Ok
                       ? t.measured.weightedCycles
                       : std::numeric_limits<double>::infinity();
        };
        for (size_t i = 1; i <= 1 + bt.tuneRounds.size(); ++i)
            if (cyclesOf(i) < cyclesOf(bt.tunedIdx))
                bt.tunedIdx = i;
        tuned.push_back(std::move(bt));
    }

    auto tunedRound = [](const BenchTune &bt) -> const TuneRound & {
        if (bt.tunedIdx == 0)
            return bt.heuristic;
        if (bt.tunedIdx == 1)
            return bt.search;
        return bt.tuneRounds[bt.tunedIdx - 2];
    };
    auto qeqfShare = [](const TuneRound &r) {
        return bucketShare(r.measured.stallCycles,
                           sim::StallReason::QueueEmpty) +
               bucketShare(r.measured.stallCycles,
                           sim::StallReason::QueueFull);
    };
    // stallShareReduced credits the loop when *any* search-strategy
    // round measured a lower queue-empty+queue-full share than the
    // heuristic: the tuned pick optimizes cycles, so a stall-composition
    // win that costs cycles still counts (and is evidenced by that
    // round's entry in the JSON).
    auto bestQeqf = [&](const BenchTune &bt) {
        double best = std::numeric_limits<double>::infinity();
        auto consider = [&](const TuneRound &r) {
            if (r.measured.outcome == sim::RunOutcome::Ok)
                best = std::min(best, qeqfShare(r));
        };
        consider(bt.search);
        for (const auto &r : bt.tuneRounds)
            consider(r);
        return best;
    };

    int predicted_improved = 0;
    int measured_improved = 0;
    int stall_reduced = 0;
    int converged_count = 0;
    for (const auto &bt : tuned) {
        const TuneRound &t = tunedRound(bt);
        bool ok = bt.heuristic.measured.outcome == sim::RunOutcome::Ok &&
                  t.measured.outcome == sim::RunOutcome::Ok;
        if (bt.search.predictedCycles <
            bt.heuristic.predictedCycles - 1e-9)
            ++predicted_improved;
        if (ok && t.measured.weightedCycles <
                      bt.heuristic.measured.weightedCycles - 1e-9)
            ++measured_improved;
        if (bt.heuristic.measured.outcome == sim::RunOutcome::Ok &&
            bestQeqf(bt) < qeqfShare(bt.heuristic) - 1e-12)
            ++stall_reduced;
        if (bt.converged)
            ++converged_count;
    }

    if (json) {
        JsonWriter w;
        w.beginObject()
            .key("bench").value("autotune")
            .key("config").value(base.name)
            .key("maxRounds").value(max_rounds)
            .key("results").beginArray();
        for (const auto &bt : tuned) {
            const TuneRound &t = tunedRound(bt);
            bool ok =
                bt.heuristic.measured.outcome == sim::RunOutcome::Ok &&
                t.measured.outcome == sim::RunOutcome::Ok;
            w.beginObject().key("benchmark").value(bt.name);
            tuneRoundJson(w, "heuristic", bt.heuristic);
            tuneRoundJson(w, "searched", bt.search);
            w.key("rounds").beginArray();
            for (const auto &r : bt.tuneRounds) {
                w.beginObject();
                tuneRoundJson(w, "round", r);
                w.endObject();
            }
            w.endArray();
            tuneRoundJson(w, "tuned", t);
            w.key("tunedRound")
                .value(static_cast<double>(bt.tunedIdx))
                .key("converged").value(bt.converged)
                .key("predictedImproved")
                .value(bt.search.predictedCycles <
                       bt.heuristic.predictedCycles - 1e-9)
                .key("measuredImproved")
                .value(ok && t.measured.weightedCycles <
                                 bt.heuristic.measured.weightedCycles -
                                     1e-9)
                .key("bestQueueStallShare")
                .value(bestQeqf(bt) ==
                               std::numeric_limits<double>::infinity()
                           ? -1.0
                           : bestQeqf(bt))
                .key("stallShareReduced")
                .value(bt.heuristic.measured.outcome ==
                           sim::RunOutcome::Ok &&
                       bestQeqf(bt) < qeqfShare(bt.heuristic) - 1e-12)
                .endObject();
        }
        w.endArray();
        w.key("summary").beginObject()
            .key("benchmarks")
            .value(static_cast<double>(tuned.size()))
            .key("predictedImproved").value(predicted_improved)
            .key("measuredImproved").value(measured_improved)
            .key("stallShareReduced").value(stall_reduced)
            .key("converged").value(converged_count)
            .endObject();
        w.endObject();
        writeOut(out_path, w.str() + "\n", "tune");
        return 0;
    }

    std::ostringstream os;
    os << "autotune  config " << base.name << "  max rounds "
       << max_rounds << "\n";
    for (const auto &bt : tuned) {
        const TuneRound &t = tunedRound(bt);
        char line[256];
        std::snprintf(
            line, sizeof(line),
            "%-14s heuristic %10.0f  searched %10.0f  tuned %10.0f "
            "(round %zu%s)  qe+qf %.3f -> best %.3f\n",
            bt.name.c_str(), bt.heuristic.measured.weightedCycles,
            bt.search.measured.weightedCycles,
            t.measured.weightedCycles, bt.tunedIdx,
            bt.converged ? ", converged" : "", qeqfShare(bt.heuristic),
            bestQeqf(bt));
        os << line;
        if (!t.plan.empty())
            os << "    plan: " << t.plan << "\n";
    }
    char sum[200];
    std::snprintf(sum, sizeof(sum),
                  "summary: %zu benchmark(s), predicted improved %d, "
                  "measured improved %d, qe+qf share reduced %d, "
                  "converged %d\n",
                  tuned.size(), predicted_improved, measured_improved,
                  stall_reduced, converged_count);
    os << sum;
    writeOut(out_path, os.str(), "tune");
    return 0;
}

int
cmdTrace(const std::string &bench_name,
         const std::vector<std::string> &args)
{
    harness::PaperConfig which = harness::PaperConfig::WaspGpu;
    std::string out_path = "trace.json";
    bool telemetry = false;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--config" && i + 1 < args.size()) {
            if (!parseConfig(args[++i], &which))
                fatal("unknown config '%s'", args[i].c_str());
        } else if (arg == "-o" && i + 1 < args.size()) {
            out_path = args[++i];
        } else if (arg == "--telemetry") {
            telemetry = true;
        } else {
            return usage();
        }
    }
    harness::ConfigSpec spec = harness::makeConfig(which);
    const workloads::BenchmarkDef &bench =
        workloads::benchmark(bench_name);

    if (telemetry) {
        // Toolchain-telemetry mode: run the benchmark with telemetry
        // recording (no simulated-event sink) and export the span
        // timeline as the Chrome trace instead.
        telem::enable(true);
        for (const auto &mix : bench.kernels) {
            mem::GlobalMemory gmem;
            workloads::BuiltKernel k = mix.build(gmem);
            telem::Span kernel_span("trace.kernel");
            kernel_span.attr("kernel", mix.label);
            (void)harness::runKernel(spec, k, gmem);
        }
        TraceSink tsink;
        telem::exportChromeTrace(tsink);
        writeOut(out_path, tsink.render() + "\n", "trace");
        std::fprintf(stderr,
                     "trace: %llu telemetry events from %zu kernel(s)\n",
                     static_cast<unsigned long long>(tsink.eventCount()),
                     bench.kernels.size());
        return 0;
    }

    TraceSink sink;
    uint64_t base = 0;
    for (const auto &mix : bench.kernels) {
        // Untraced pass: settles the per-kernel compile decision (and
        // verifies output) so the traced run executes exactly the
        // program the matrix would run.
        mem::GlobalMemory warm_gmem;
        workloads::BuiltKernel warm_k = mix.build(warm_gmem);
        harness::KernelResult kr =
            harness::runKernel(spec, warm_k, warm_gmem);

        sim::GpuConfig gpu = spec.gpu;
        if (warm_k.isGemm && spec.gemmIdealMapping)
            gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
        gpu.trace = &sink;
        sink.setTimeBase(base);
        sink.instant(0, 0, "kernel:" + mix.label, "kernel", 0);
        mem::GlobalMemory gmem;
        workloads::BuiltKernel k = mix.build(gmem);
        sim::RunStats stats = sim::runProgram(gpu, gmem, kr.compiled,
                                              k.grid, k.params);
        // Gap between kernels keeps their tracks visually separate.
        base += stats.cycles + 1000;
    }
    writeOut(out_path, sink.render() + "\n", "trace");
    std::fprintf(stderr, "trace: %llu events from %zu kernel(s)\n",
                 static_cast<unsigned long long>(sink.eventCount()),
                 bench.kernels.size());
    return 0;
}

int
cmdCompile(const std::string &path, bool tile_only, bool no_tma,
           compiler::PartitionStrategy strategy)
{
    isa::Program prog = isa::assemble(readFile(path));
    compiler::CompileOptions opts;
    opts.streamGather = !tile_only;
    opts.emitTma = !no_tma;
    opts.strategy = strategy;
    // The default machine model prices Search candidates when no
    // harness config is in play (the harness passes the real one).
    compiler::CompileResult cr =
        compiler::warpSpecialize(prog, opts, compiler::CompileContext{});
    std::fprintf(stderr,
                 "; stages=%d extracted=%d tiled=%s doubleBuffered=%s "
                 "tmaStreams=%d tmaGathers=%d transformed=%s\n",
                 cr.report.numStages, cr.report.extractedLoads,
                 cr.report.tiled ? "yes" : "no",
                 cr.report.doubleBuffered ? "yes" : "no",
                 cr.report.tmaStreams, cr.report.tmaGathers,
                 cr.report.transformed ? "yes" : "no");
    if (cr.report.transformed) {
        std::fprintf(stderr, "; strategy=%s plan=%s",
                     cr.report.strategy ==
                             compiler::PartitionStrategy::Search
                         ? "search"
                         : "heuristic",
                     cr.report.plan.c_str());
        if (cr.report.strategy == compiler::PartitionStrategy::Search)
            std::fprintf(stderr, " candidates=%d",
                         cr.report.searchCandidates);
        std::fprintf(stderr, "\n");
    }
    for (const auto &note : cr.report.notes)
        std::fprintf(stderr, "; note: %s\n", note.c_str());
    std::printf("%s", isa::disassemble(cr.program).c_str());
    return 0;
}

int
cmdLint(const std::vector<std::string> &paths, bool compile,
        bool tile_only, bool no_tma, bool wall)
{
    int clean = 0;
    int failed = 0;
    for (const auto &path : paths) {
        // Parse without the hard validate() asserts: the verifier
        // reports the same conditions (and much more) as diagnostics.
        isa::Program prog = isa::assemble(readFile(path), false);
        if (compile) {
            compiler::CompileOptions opts;
            opts.streamGather = !tile_only;
            opts.emitTma = !no_tma;
            compiler::CompileResult cr =
                compiler::warpSpecialize(prog, opts);
            std::fprintf(stderr, "; %s: linting %s form (%d stages)\n",
                         path.c_str(),
                         cr.report.transformed ? "warp-specialized"
                                               : "untransformed",
                         cr.report.numStages);
            prog = std::move(cr.program);
        }
        compiler::VerifyResult vr = compiler::verifyProgram(prog);
        for (const auto &d : vr.diags) {
            if (d.severity == compiler::Severity::Warning && !wall)
                continue;
            std::printf("%s\n",
                        compiler::renderDiagnostic(prog, d).c_str());
        }
        std::printf("%s: %s: %d error(s), %d warning(s)\n",
                    path.c_str(), prog.name.c_str(), vr.errors(),
                    vr.warnings());
        if (vr.ok())
            ++clean;
        else
            ++failed;
    }
    if (paths.size() > 1)
        std::printf("lint: %d/%zu files clean\n", clean, paths.size());
    return failed == 0 ? 0 : 1;
}

int
cmdRun(const std::string &path, int grid,
       const std::vector<uint32_t> &params,
       const std::vector<size_t> &alloc_slots,
       const std::vector<uint32_t> &alloc_bytes, bool wasp)
{
    isa::Program prog = isa::assemble(readFile(path));
    mem::GlobalMemory gmem;
    std::vector<uint32_t> final_params = params;
    for (size_t i = 0; i < alloc_slots.size(); ++i) {
        uint32_t addr = gmem.alloc(alloc_bytes[i]);
        final_params.insert(final_params.begin() +
                                static_cast<long>(alloc_slots[i]),
                            addr);
    }

    const isa::Program *to_run = &prog;
    compiler::CompileResult cr;
    sim::GpuConfig gpu;
    if (wasp) {
        compiler::CompileOptions opts;
        opts.emitTma = true;
        cr = compiler::warpSpecialize(prog, opts);
        to_run = &cr.program;
        gpu.queueBackend = sim::QueueBackend::Rfq;
        gpu.regAlloc = sim::RegAllocPolicy::PerStage;
        gpu.mapPolicy = sim::WarpMapPolicy::GroupPipeline;
        gpu.sched = sim::SchedPolicy::WaspCombined;
        gpu.waspTmaEnabled = true;
        std::fprintf(stderr, "; warp specialized into %d stages\n",
                     cr.report.numStages);
    }
    sim::RunStats stats =
        sim::runProgram(gpu, gmem, *to_run, grid, final_params);
    std::printf("cycles            %llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("dyn instructions  %llu\n",
                static_cast<unsigned long long>(stats.totalDynInstrs()));
    for (int c = 0; c < 6; ++c) {
        std::printf("  %-10s      %llu\n",
                    isa::categoryName(static_cast<isa::InstrCategory>(c)),
                    static_cast<unsigned long long>(
                        stats.dynInstrs[static_cast<size_t>(c)]));
    }
    std::printf("L1 hit rate       %.1f%%\n", stats.l1HitRate() * 100.0);
    std::printf("L2 utilization    %.1f%%\n",
                stats.l2Utilization() * 100.0);
    std::printf("DRAM utilization  %.1f%%\n",
                stats.dramUtilization() * 100.0);
    return 0;
}

/** One out-of-tolerance metric found by `report --check`. */
struct Regression
{
    std::string metric;
    std::string detail;
};

/**
 * wasp-cli report: Markdown run report plus regression gate against
 * the committed benchmark baselines. The stall-breakdown baseline is
 * re-simulated live (it is cheap and fully deterministic); the
 * throughput and autotune baselines are checked for internal
 * consistency (wall-clock numbers are host-dependent, so re-timing
 * them here would gate on the machine, not the code).
 */
int
cmdReport(const std::vector<std::string> &args)
{
    bool check = false;
    int jobs = 0;
    std::string out_path;
    std::vector<std::string> only_apps;
    std::string stall_path = "BENCH_stall_breakdown.json";
    std::string thr_path = "BENCH_sim_throughput.json";
    std::string tune_path = "BENCH_autotune.json";
    harness::MatrixOptions mopts;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--check") {
            check = true;
        } else if (arg == "--apps" && i + 1 < args.size()) {
            only_apps = splitCommas(args[++i]);
        } else if (arg == "-j" && i + 1 < args.size()) {
            jobs = std::atoi(args[++i].c_str());
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            jobs = std::atoi(arg.c_str() + 2);
        } else if (arg == "-o" && i + 1 < args.size()) {
            out_path = args[++i];
        } else if (arg.rfind("--cache=", 0) == 0) {
            mopts.cacheDir = arg.substr(std::strlen("--cache="));
            if (mopts.cacheDir.empty())
                return usage();
        } else if (arg.rfind("--stall-baseline=", 0) == 0) {
            stall_path = arg.substr(std::strlen("--stall-baseline="));
        } else if (arg.rfind("--throughput-baseline=", 0) == 0) {
            thr_path = arg.substr(std::strlen("--throughput-baseline="));
        } else if (arg.rfind("--autotune-baseline=", 0) == 0) {
            tune_path = arg.substr(std::strlen("--autotune-baseline="));
        } else {
            return usage();
        }
    }

    auto loadJson = [](const std::string &path, minijson::Value &out) {
        std::ifstream in(path);
        if (!in)
            return false;
        std::ostringstream os;
        os << in.rdbuf();
        std::string err;
        if (!minijson::parse(os.str(), out, &err))
            fatal("%s: bad JSON: %s", path.c_str(), err.c_str());
        return true;
    };

    minijson::Value stall;
    if (!loadJson(stall_path, stall))
        fatal("cannot open stall baseline '%s'", stall_path.c_str());
    if (!stall["results"].isArray())
        fatal("%s: missing results array", stall_path.c_str());

    std::vector<Regression> regressions;
    int checked = 0;
    auto flag = [&](const std::string &metric, const std::string &detail) {
        regressions.push_back({metric, detail});
    };
    char buf[256];

    // Scope: the benchmarks and configs the baseline names, optionally
    // restricted to --apps. Config names in the baseline are the
    // paper's (BASELINE, WASP_GPU, ...); parseConfig accepts them.
    auto wantApp = [&](const std::string &name) {
        return only_apps.empty() ||
               std::find(only_apps.begin(), only_apps.end(), name) !=
                   only_apps.end();
    };
    std::vector<std::string> apps;
    std::vector<harness::PaperConfig> configs;
    std::vector<std::string> paper_names;
    for (const auto &cell : stall["results"].array) {
        const std::string &app = cell["benchmark"].str;
        const std::string &cfg = cell["config"].str;
        if (wantApp(app) &&
            std::find(apps.begin(), apps.end(), app) == apps.end())
            apps.push_back(app);
        if (std::find(paper_names.begin(), paper_names.end(), cfg) ==
            paper_names.end()) {
            harness::PaperConfig which;
            if (!parseConfig(cfg, &which))
                fatal("%s: unknown config '%s'", stall_path.c_str(),
                      cfg.c_str());
            paper_names.push_back(cfg);
            configs.push_back(which);
        }
    }
    if (apps.empty())
        fatal("report: no baseline benchmarks in scope (bad --apps?)");

    // Re-simulate the in-scope slice with telemetry on: matrix.cell
    // spans provide the per-benchmark wall-time table, the counters
    // the cache summary. Telemetry never perturbs the simulated
    // numbers being compared.
    telem::enable(true);
    std::vector<harness::ConfigSpec> specs;
    std::vector<std::string> config_names;
    for (harness::PaperConfig which : configs) {
        specs.push_back(harness::makeConfig(which));
        config_names.push_back(specs.back().name);
    }
    mopts.jobs = jobs > 0 ? jobs : ThreadPool::defaultJobs();
    harness::CacheCounters cache_counters;
    mopts.cacheCounters = &cache_counters;
    auto t0 = std::chrono::steady_clock::now();
    std::vector<harness::BenchResult> results =
        harness::runMatrix(specs, apps, mopts);
    double wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - t0)
            .count();

    std::map<std::pair<std::string, std::string>,
             const harness::BenchResult *>
        live;
    for (const auto &r : results)
        live[{r.benchmark, r.config}] = &r;

    // --- Stage 1: live rerun vs the stall baseline, per-metric
    // tolerances. weightedCycles: 2% relative. Stall shares: 0.02
    // absolute. Utilizations / hit rate: 0.05 absolute.
    for (const auto &cell : stall["results"].array) {
        const std::string &app = cell["benchmark"].str;
        if (!wantApp(app))
            continue;
        const std::string &paper = cell["config"].str;
        size_t ci = static_cast<size_t>(
            std::find(paper_names.begin(), paper_names.end(), paper) -
            paper_names.begin());
        std::string where = "stall." + app + "." + paper;
        auto it = live.find({app, config_names[ci]});
        ++checked;
        if (it == live.end()) {
            flag(where, "cell missing from live rerun");
            continue;
        }
        const harness::BenchResult &r = *it->second;
        ++checked;
        if (!r.verified)
            flag(where + ".verified", "live cell failed verification");
        ++checked;
        if (r.outcome != sim::RunOutcome::Ok) {
            flag(where + ".outcome",
                 std::string("live outcome ") +
                     sim::outcomeName(r.outcome));
            continue;
        }
        double base_wc = cell["weightedCycles"].number;
        ++checked;
        if (std::fabs(r.weightedCycles - base_wc) >
            0.02 * std::max(1.0, std::fabs(base_wc))) {
            std::snprintf(buf, sizeof(buf),
                          "baseline %.2f vs live %.2f (tolerance 2%%)",
                          base_wc, r.weightedCycles);
            flag(where + ".weightedCycles", buf);
        }
        double base_total = 0.0;
        for (const auto &[k, v] : cell["stall"].object) {
            (void)k;
            base_total += v.number;
        }
        double live_total = 0.0;
        for (double v : r.stallCycles)
            live_total += v;
        for (size_t s = 0; s < sim::kNumStallReasons; ++s) {
            const char *rn =
                sim::stallReasonName(static_cast<sim::StallReason>(s));
            double bs = base_total > 0.0
                            ? cell["stall"][rn].number / base_total
                            : 0.0;
            double ls =
                live_total > 0.0 ? r.stallCycles[s] / live_total : 0.0;
            ++checked;
            if (std::fabs(bs - ls) > 0.02) {
                std::snprintf(
                    buf, sizeof(buf),
                    "share baseline %.4f vs live %.4f (tolerance 0.02)",
                    bs, ls);
                flag(where + ".stall." + rn, buf);
            }
        }
        auto checkAbs = [&](const char *field, double base_v,
                            double live_v) {
            ++checked;
            if (std::fabs(base_v - live_v) > 0.05) {
                std::snprintf(
                    buf, sizeof(buf),
                    "baseline %.4f vs live %.4f (tolerance 0.05)",
                    base_v, live_v);
                flag(where + "." + field, buf);
            }
        };
        checkAbs("l2Utilization", cell["l2Utilization"].number,
                 r.l2Utilization);
        checkAbs("dramUtilization", cell["dramUtilization"].number,
                 r.dramUtilization);
        checkAbs("l1HitRate", cell["l1HitRate"].number, r.l1HitRate);
    }

    // --- Stage 2: throughput baseline internal consistency. The
    // committed cycles/second numbers must agree with their own
    // cycles and seconds (1% relative; the JSON rounds cps to
    // integers and speedups to 3 decimals).
    auto closeRel = [](double a, double b, double tol) {
        return std::fabs(a - b) <=
               std::max(tol, tol * std::max(std::fabs(a), std::fabs(b)));
    };
    minijson::Value thr;
    bool have_thr = loadJson(thr_path, thr);
    if (!have_thr) {
        flag("throughput.baseline",
             "cannot open '" + thr_path + "'");
    } else if (!thr["results"].isArray()) {
        flag("throughput.baseline",
             thr_path + ": missing results array");
    } else {
        for (const auto &row : thr["results"].array) {
            std::string where = "throughput." + row["benchmark"].str +
                                "." + row["config"].str;
            double cycles = row["cycles"].number;
            double ref_s = row["reference_seconds"].number;
            double skip_s = row["skip_seconds"].number;
            ++checked;
            if (cycles <= 0.0 || ref_s <= 0.0 || skip_s <= 0.0) {
                flag(where, "non-positive cycles or seconds");
                continue;
            }
            ++checked;
            if (!closeRel(row["reference_cps"].number, cycles / ref_s,
                          0.01)) {
                std::snprintf(buf, sizeof(buf),
                              "reference_cps %.0f != cycles/seconds "
                              "%.0f (tolerance 1%%)",
                              row["reference_cps"].number,
                              cycles / ref_s);
                flag(where + ".reference_cps", buf);
            }
            ++checked;
            if (!closeRel(row["skip_cps"].number, cycles / skip_s,
                          0.01)) {
                std::snprintf(buf, sizeof(buf),
                              "skip_cps %.0f != cycles/seconds %.0f "
                              "(tolerance 1%%)",
                              row["skip_cps"].number, cycles / skip_s);
                flag(where + ".skip_cps", buf);
            }
            double want_speedup = row["skip_cps"].number /
                                  std::max(1.0, row["reference_cps"].number);
            ++checked;
            if (std::fabs(row["speedup"].number - want_speedup) >
                std::max(0.005, 0.01 * want_speedup)) {
                std::snprintf(buf, sizeof(buf),
                              "speedup %.3f != skip/ref %.3f",
                              row["speedup"].number, want_speedup);
                flag(where + ".speedup", buf);
            }
            const auto &scaling = row["sm_scaling"].array;
            for (size_t s = 0; s < scaling.size(); ++s) {
                const auto &pt = scaling[s];
                std::string pwhere =
                    where + ".sm_scaling[" +
                    std::to_string(
                        static_cast<long long>(pt["threads"].number)) +
                    "]";
                ++checked;
                if (pt["seconds"].number <= 0.0 ||
                    !closeRel(pt["cps"].number,
                              cycles / pt["seconds"].number, 0.01)) {
                    flag(pwhere + ".cps",
                         "cps disagrees with cycles/seconds");
                }
                double base_cps = scaling[0]["cps"].number;
                double want = pt["cps"].number / std::max(1.0, base_cps);
                ++checked;
                if (std::fabs(pt["speedup"].number - want) >
                    std::max(0.005, 0.01 * want)) {
                    std::snprintf(buf, sizeof(buf),
                                  "speedup %.3f != cps ratio %.3f",
                                  pt["speedup"].number, want);
                    flag(pwhere + ".speedup", buf);
                }
            }
        }
    }

    // --- Stage 3: autotune baseline. The summary tallies must agree
    // with the per-result flags, and the tuned pick must honor the
    // "never ships a measured regression" contract.
    minijson::Value tune;
    bool have_tune = loadJson(tune_path, tune);
    if (!have_tune) {
        flag("autotune.baseline", "cannot open '" + tune_path + "'");
    } else if (!tune["results"].isArray()) {
        flag("autotune.baseline", tune_path + ": missing results array");
    } else {
        const auto &tres = tune["results"].array;
        int predicted = 0;
        int measured = 0;
        int stall_red = 0;
        int converged = 0;
        for (const auto &res : tres) {
            std::string where = "autotune." + res["benchmark"].str;
            predicted += res["predictedImproved"].boolean ? 1 : 0;
            measured += res["measuredImproved"].boolean ? 1 : 0;
            stall_red += res["stallShareReduced"].boolean ? 1 : 0;
            converged += res["converged"].boolean ? 1 : 0;
            double h = res["heuristic"]["measuredCycles"].number;
            double t = res["tuned"]["measuredCycles"].number;
            ++checked;
            if (h > 0.0 && t > h * (1.0 + 1e-9)) {
                std::snprintf(buf, sizeof(buf),
                              "tuned measured %.2f regresses heuristic "
                              "%.2f",
                              t, h);
                flag(where + ".tunedRegression", buf);
            }
        }
        const auto &summary = tune["summary"];
        auto checkCount = [&](const char *field, double want) {
            ++checked;
            if (summary[field].number != want) {
                std::snprintf(buf, sizeof(buf),
                              "summary %.0f != recomputed %.0f",
                              summary[field].number, want);
                flag(std::string("autotune.summary.") + field, buf);
            }
        };
        checkCount("benchmarks", static_cast<double>(tres.size()));
        checkCount("predictedImproved", predicted);
        checkCount("measuredImproved", measured);
        checkCount("stallShareReduced", stall_red);
        checkCount("converged", converged);
    }

    // --- Markdown rendering.
    telem::MetricsSnapshot snap = telem::metricsSnapshot();
    std::vector<telem::SpanRecord> spans = telem::harvestSpans();
    std::map<std::string, double> bench_wall_ms;
    for (const auto &sp : spans) {
        if (sp.name != "matrix.cell")
            continue;
        for (const auto &a : sp.attrs) {
            if (a.key == "benchmark" && a.json.size() >= 2) {
                // Attr values are pre-rendered JSON; benchmark names
                // never need escaping, so stripping quotes suffices.
                bench_wall_ms[a.json.substr(1, a.json.size() - 2)] +=
                    static_cast<double>(sp.endNs - sp.beginNs) / 1e6;
            }
        }
    }

    std::ostringstream md;
    md << "# WASP run report\n\n";
    md << "Live rerun: " << apps.size() << " benchmark(s) x "
       << config_names.size() << " config(s) on " << mopts.jobs
       << " worker thread(s) in " << harness::fmtDouble(wall_ms, 0) << " ms";
    for (const auto &[name, value] : snap.gauges) {
        if (name == "matrix.worker_utilization")
            md << " (worker utilization " << harness::fmtPercent(value, 1) << ")";
    }
    md << ".\n\n";

    md << "## Top benchmarks by wall time\n\n";
    md << "| Benchmark | Wall ms | Weighted cycles ("
       << paper_names.front() << ") |\n";
    md << "|---|---:|---:|\n";
    std::vector<std::pair<double, std::string>> by_wall;
    for (const auto &[name, ms] : bench_wall_ms)
        by_wall.push_back({ms, name});
    std::sort(by_wall.rbegin(), by_wall.rend());
    for (size_t i = 0; i < by_wall.size() && i < 10; ++i) {
        const auto &[ms, name] = by_wall[i];
        auto it = live.find({name, config_names.front()});
        md << "| " << name << " | " << harness::fmtDouble(ms, 1) << " | "
           << (it != live.end()
                   ? harness::fmtDouble(it->second->weightedCycles, 0)
                   : std::string("-"))
           << " |\n";
    }
    md << "\n";

    md << "## Cache efficiency\n\n";
    if (cache_counters.used) {
        uint64_t lookups = cache_counters.hits + cache_counters.misses;
        md << "- hits: " << cache_counters.hits << "\n"
           << "- misses: " << cache_counters.misses << "\n"
           << "- quarantined: " << cache_counters.quarantined << "\n"
           << "- hit rate: "
           << (lookups > 0
                   ? harness::fmtPercent(static_cast<double>(cache_counters.hits) /
                                    static_cast<double>(lookups),
                                1)
                   : std::string("-"))
           << "\n\n";
    } else {
        md << "No result cache in use (pass --cache=DIR to warm one)."
           << "\n\n";
    }

    md << "## Stall shares (live rerun)\n\n";
    md << "| Stall reason |";
    for (const auto &paper : paper_names)
        md << " " << paper << " |";
    md << "\n|---|";
    for (size_t c = 0; c < paper_names.size(); ++c)
        md << "---:|";
    md << "\n";
    for (size_t s = 0; s < sim::kNumStallReasons; ++s) {
        md << "| "
           << sim::stallReasonName(static_cast<sim::StallReason>(s))
           << " |";
        for (size_t c = 0; c < config_names.size(); ++c) {
            double total = 0.0;
            double bucket = 0.0;
            for (const auto &app : apps) {
                auto it = live.find({app, config_names[c]});
                if (it == live.end())
                    continue;
                for (double v : it->second->stallCycles)
                    total += v;
                bucket += it->second->stallCycles[s];
            }
            md << " " << (total > 0.0
                              ? harness::fmtPercent(bucket / total, 1)
                              : std::string("-"))
               << " |";
        }
        md << "\n";
    }
    md << "\n";

    md << "## Baseline comparison\n\n";
    md << "- metrics checked: " << checked << "\n";
    md << "- regressions: " << regressions.size() << "\n";
    if (regressions.empty()) {
        md << "\nAll metrics within tolerance.\n";
    } else {
        md << "\n| Metric | Detail |\n|---|---|\n";
        for (const auto &reg : regressions)
            md << "| " << reg.metric << " | " << reg.detail << " |\n";
    }
    writeOut(out_path, md.str(), "report");

    for (const auto &reg : regressions)
        std::fprintf(stderr, "report: REGRESSION %s: %s\n",
                     reg.metric.c_str(), reg.detail.c_str());
    if (check) {
        if (!regressions.empty())
            return 1;
        std::fprintf(stderr,
                     "report-check: OK (%d metrics within tolerance)\n",
                     checked);
    }
    return 0;
}

} // namespace

int
dispatch(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    // Env-var telemetry works for every command (the tune loop has no
    // dedicated flags): WASP_TELEMETRY=1 records spans/metrics,
    // WASP_LEDGER=FILE additionally appends the run ledger there.
    if (const char *ledger = std::getenv("WASP_LEDGER");
        ledger != nullptr && ledger[0] != '\0') {
        std::string err;
        if (!telem::openLedger(ledger, &err))
            fatal("cannot open ledger '%s': %s", ledger, err.c_str());
    } else if (const char *t = std::getenv("WASP_TELEMETRY");
               t != nullptr && t[0] == '1') {
        telem::enable(true);
    }
    std::string cmd = argv[1];
    if (cmd == "report") {
        std::vector<std::string> args(argv + 2, argv + argc);
        return cmdReport(args);
    }
    if (cmd == "cache") {
        std::vector<std::string> args(argv + 2, argv + argc);
        return cmdCache(args);
    }
    if (cmd == "matrix") {
        std::vector<std::string> args(argv + 2, argv + argc);
        return cmdMatrix(args);
    }
    if (cmd == "perf") {
        std::vector<std::string> args(argv + 2, argv + argc);
        return cmdPerf(args);
    }
    if (argc < 3)
        return usage();
    std::string path = argv[2];
    if (cmd == "stats") {
        std::vector<std::string> args(argv + 3, argv + argc);
        return cmdStats(path, args);
    }
    if (cmd == "trace") {
        std::vector<std::string> args(argv + 3, argv + argc);
        return cmdTrace(path, args);
    }
    if (cmd == "roundtrip") {
        isa::Program prog = isa::assemble(readFile(path));
        std::printf("%s", isa::disassemble(prog).c_str());
        return 0;
    }
    if (cmd == "compile") {
        bool tile_only = false;
        bool no_tma = false;
        compiler::PartitionStrategy strategy =
            compiler::PartitionStrategy::Heuristic;
        for (int i = 3; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--tile-only"))
                tile_only = true;
            else if (!std::strcmp(argv[i], "--no-tma"))
                no_tma = true;
            else if (!std::strncmp(argv[i], "--strategy=",
                                   std::strlen("--strategy="))) {
                if (!parseStrategy(argv[i] + std::strlen("--strategy="),
                                   &strategy))
                    return usage();
            } else
                return usage();
        }
        return cmdCompile(path, tile_only, no_tma, strategy);
    }
    if (cmd == "tune") {
        std::vector<std::string> args(argv + 3, argv + argc);
        return cmdTune(path, args);
    }
    if (cmd == "lint") {
        bool compile = false;
        bool tile_only = false;
        bool no_tma = false;
        bool wall = false;
        std::vector<std::string> paths;
        for (int i = 2; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--compile"))
                compile = true;
            else if (!std::strcmp(argv[i], "--tile-only"))
                tile_only = true;
            else if (!std::strcmp(argv[i], "--no-tma"))
                no_tma = true;
            else if (!std::strcmp(argv[i], "-Wall"))
                wall = true;
            else if (argv[i][0] == '-')
                return usage();
            else
                paths.emplace_back(argv[i]);
        }
        if (paths.empty())
            return usage();
        return cmdLint(paths, compile, tile_only, no_tma, wall);
    }
    if (cmd == "analyze") {
        std::vector<std::string> args(argv + 3, argv + argc);
        return cmdAnalyze(path, args);
    }
    if (cmd == "run") {
        int grid = 1;
        bool wasp = false;
        std::vector<uint32_t> params;
        std::vector<size_t> alloc_slots;
        std::vector<uint32_t> alloc_bytes;
        for (int i = 3; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--grid") && i + 1 < argc) {
                grid = std::atoi(argv[++i]);
            } else if (!std::strcmp(argv[i], "--param") && i + 1 < argc) {
                params.push_back(static_cast<uint32_t>(
                    std::strtoul(argv[++i], nullptr, 0)));
            } else if (!std::strcmp(argv[i], "--alloc") && i + 1 < argc) {
                alloc_slots.push_back(params.size() + alloc_slots.size());
                alloc_bytes.push_back(static_cast<uint32_t>(
                    std::strtoul(argv[++i], nullptr, 0)));
            } else if (!std::strcmp(argv[i], "--wasp")) {
                wasp = true;
            } else {
                return usage();
            }
        }
        return cmdRun(path, grid, params, alloc_slots, alloc_bytes, wasp);
    }
    return usage();
}

int
main(int argc, char **argv)
{
    // The library layer throws instead of aborting (SimError for failed
    // simulations, AssembleError for bad input); the CLI is the
    // recovery point that turns them into messages and exit codes.
    try {
        return dispatch(argc, argv);
    } catch (const sim::SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.diagnosis.c_str());
        if (!e.stats.pipelineDump.empty())
            std::fprintf(stderr, "pipeline state:\n%s",
                         e.stats.pipelineDump.c_str());
        return 3;
    } catch (const SimAbortError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
