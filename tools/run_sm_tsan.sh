#!/usr/bin/env sh
# Build the tree with ThreadSanitizer and run the parallel-SM test
# label. The `smpar` label covers the epoch/barrier SM-parallelism
# suite (TickGang, L2 ingress staging, equivalence subsets, the
# runMatrix composition test) — exactly where a race between SM worker
# threads inside one simulation would silently corrupt determinism.
#
#   ./tools/run_sm_tsan.sh [build-dir] [extra ctest args...]
#
# By default runs the quick subset (-LE slow); pass --full as the
# first extra argument to include the slow full-sweep equivalence test
# (hours under TSAN on a small host). WASP_SM_THREADS=4 forces the
# parallel tick path even in tests that would default to serial.
#
# Uses a dedicated build directory (default build-tsan) so the regular
# build stays uninstrumented. Exits with ctest's status, so it can
# serve as a CI gate.
set -eu

build_dir="${1:-build-tsan}"
[ $# -gt 0 ] && shift

label_args="-LE slow"
if [ "${1:-}" = "--full" ]; then
    label_args=""
    shift
fi

cd "$(dirname "$0")/.."

cmake -B "$build_dir" -S . -DWASP_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)" \
    --target sm_parallel_test sm_parallel_equiv_test wasp-cli

cd "$build_dir"
export WASP_SM_THREADS=4
# The seeded cross-SM gmem violation fixture is excluded: it exists to
# BE a race (tests/broken/cross_sm_gmem.wsass — every CTA stores to
# the same word), and under WASP_SM_THREADS=4 the auditor catches it
# through genuinely racing functional writes that TSAN would dutifully
# report. Every well-formed workload in the label runs under TSAN.
# shellcheck disable=SC2086  # label_args is intentionally word-split
exec ctest -L smpar -E SeededCrossSmRaceFixture $label_args \
    --output-on-failure "$@"
