/**
 * @file
 * Shared infrastructure for the per-figure benchmark binaries: a
 * memoized, thread-safe benchmark runner (each (app, config)
 * simulation runs once per process, even under concurrent callers),
 * a `-j N` jobs flag shared by every binary, and parallel cache
 * prewarming for a figure's config × app matrix.
 */

#ifndef WASP_BENCH_COMMON_HH
#define WASP_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "harness/runner.hh"

namespace wasp::bench
{

/**
 * Run (or fetch the cached result of) one app under one config.
 * Thread-safe: concurrent callers with the same key block until the
 * single filling simulation finishes instead of double-simulating.
 * The returned reference stays valid for the life of the process.
 */
const harness::BenchResult &cachedRun(const harness::ConfigSpec &spec,
                                      const std::string &app);

/** Names of all Table II applications, in paper order. */
std::vector<std::string> allApps();

/**
 * Parse and strip `-j N` / `-jN` / `--jobs N` / `--jobs=N` from argv
 * (before benchmark::Initialize sees it). Returns the job count, which
 * defaults to the hardware concurrency when the flag is absent.
 */
int initJobs(int *argc, char **argv);

/** The job count selected by initJobs (defaults to hardware
 * concurrency when initJobs was never called). */
int jobs();

/**
 * Populate the cachedRun memo for the full specs × allApps() matrix
 * using jobs() worker threads. Figure binaries call this first so the
 * serial google-benchmark loop and the printed tables afterwards are
 * all cache hits; because each simulation is independent and
 * deterministic, the numbers are bit-identical for any job count.
 */
void prewarm(const std::vector<harness::ConfigSpec> &specs);
void prewarm(const std::vector<harness::ConfigSpec> &specs,
             const std::vector<std::string> &apps);

} // namespace wasp::bench

#endif // WASP_BENCH_COMMON_HH
