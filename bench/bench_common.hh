/**
 * @file
 * Shared infrastructure for the per-figure benchmark binaries: a
 * memoized benchmark runner (each (app, config) simulation runs once
 * per process) and the standard list of Table II applications.
 */

#ifndef WASP_BENCH_COMMON_HH
#define WASP_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "harness/runner.hh"

namespace wasp::bench
{

/** Run (or fetch the cached result of) one app under one config. */
const harness::BenchResult &cachedRun(const harness::ConfigSpec &spec,
                                      const std::string &app);

/** Names of all Table II applications, in paper order. */
std::vector<std::string> allApps();

} // namespace wasp::bench

#endif // WASP_BENCH_COMMON_HH
