/**
 * @file
 * Table IV: WASP area overhead (storage requirements) — the analytical
 * model evaluated at the paper's full-size GPU (108 SMs, 64 warps/SM,
 * 32 CTAs/SM).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "core/area_model.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::harness;

namespace
{

void
printTable()
{
    sim::GpuConfig config;
    config.maxTbPerSm = 32;
    config.pbsPerSm = 4;
    config.warpSlotsPerPb = 16;
    core::AreaReport report = core::waspAreaOverhead(config, 108);
    Table table({"Item", "Per-SM Storage", "Per GPU (108 SMs)"});
    for (const auto &item : report.items) {
        table.row({item.name, item.perSm,
                   "~" + fmtDouble(item.perGpuKB, 1) + " KB"});
    }
    table.row({"Total", "",
               "~" + fmtDouble(report.totalKB, 1) + " KB"});
    printf("\n=== Table IV: WASP area overhead (storage requirements) "
           "===\n%s\n",
           table.render().c_str());
    printf("Estimated to be < 1%% of total GPU chip area (control "
           "metadata only; no new datapaths).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    // No simulations to fan out, but -j is accepted uniformly.
    wasp::bench::initJobs(&argc, argv);
    benchmark::RegisterBenchmark(
        "table4/area",
        [](benchmark::State &state) {
            sim::GpuConfig config;
            for (auto _ : state) {
                core::AreaReport report =
                    core::waspAreaOverhead(config, 108);
                benchmark::DoNotOptimize(report.totalKB);
            }
        })
        ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    return 0;
}
