/**
 * @file
 * Figure 15: runtime improvement of the WASP GPU hardware features,
 * added progressively on top of the WASP compiler (WASP_COMPILER_ALL):
 * per-stage register allocation, WASP-TMA, register file queues, and
 * pipeline-aware warp mapping & scheduling.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/stats.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::bench;
using namespace wasp::harness;

namespace
{

const std::vector<PaperConfig> kStack = {
    PaperConfig::CompilerAll, PaperConfig::PlusRegAlloc,
    PaperConfig::PlusTma, PaperConfig::PlusRfq, PaperConfig::WaspGpu};

void
printFigure()
{
    Table table({"Benchmark", "+regalloc", "+wasp_tma", "+rfq",
                 "+map_sched (full WASP)"});
    std::vector<std::vector<double>> speedups(kStack.size() - 1);
    for (const auto &app : allApps()) {
        const BenchResult &base =
            cachedRun(makeConfig(PaperConfig::CompilerAll), app);
        std::vector<std::string> row{app};
        for (size_t c = 1; c < kStack.size(); ++c) {
            const BenchResult &result =
                cachedRun(makeConfig(kStack[c]), app);
            double s = speedup(base, result);
            speedups[c - 1].push_back(s);
            row.push_back(fmtSpeedup(s));
        }
        table.row(row);
    }
    std::vector<std::string> gm{"geomean"};
    for (const auto &s : speedups)
        gm.push_back(fmtSpeedup(geomean(s)));
    table.row(gm);
    printf("\n=== Figure 15: WASP hardware features added progressively "
           "(speedup over WASP compiler alone) ===\n%s\n",
           table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(&argc, argv);
    std::vector<ConfigSpec> specs;
    for (PaperConfig which : kStack)
        specs.push_back(makeConfig(which));
    prewarm(specs);
    for (const auto &app : allApps()) {
        for (PaperConfig which : kStack) {
            std::string name =
                "fig15/" + app + "/" + paperConfigName(which);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [app, which](benchmark::State &state) {
                    ConfigSpec spec = makeConfig(which);
                    for (auto _ : state) {
                        benchmark::DoNotOptimize(
                            cachedRun(spec, app).weightedCycles);
                    }
                    state.counters["sim_cycles"] =
                        cachedRun(spec, app).weightedCycles;
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printFigure();
    return 0;
}
