/**
 * @file
 * Figure 20: sensitivity to the memory bandwidth / compute ratio.
 * Baseline and WASP GPUs at half, nominal, and double L2+DRAM
 * bandwidth, all normalized to the nominal baseline.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/stats.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::bench;
using namespace wasp::harness;

namespace
{

struct Variant
{
    const char *label;
    PaperConfig which;
    double bw;
};

const std::vector<Variant> kVariants = {
    {"A100_halfBW", PaperConfig::Baseline, 0.5},
    {"A100", PaperConfig::Baseline, 1.0},
    {"A100_2xBW", PaperConfig::Baseline, 2.0},
    {"WASP_halfBW", PaperConfig::WaspGpu, 0.5},
    {"WASP", PaperConfig::WaspGpu, 1.0},
    {"WASP_2xBW", PaperConfig::WaspGpu, 2.0},
};

ConfigSpec
specFor(const Variant &v)
{
    ConfigSpec spec = makeConfig(v.which, v.bw);
    spec.name = v.label;
    return spec;
}

void
printFigure()
{
    std::vector<std::string> headers{"Benchmark"};
    for (const auto &v : kVariants)
        headers.push_back(v.label);
    Table table(headers);
    std::vector<std::vector<double>> speedups(kVariants.size());
    for (const auto &app : allApps()) {
        const BenchResult &base = cachedRun(specFor(kVariants[1]), app);
        std::vector<std::string> row{app};
        for (size_t c = 0; c < kVariants.size(); ++c) {
            double s = speedup(base, cachedRun(specFor(kVariants[c]), app));
            speedups[c].push_back(s);
            row.push_back(fmtSpeedup(s));
        }
        table.row(row);
    }
    std::vector<std::string> gm{"geomean"};
    for (const auto &s : speedups)
        gm.push_back(fmtSpeedup(geomean(s)));
    table.row(gm);
    printf("\n=== Figure 20: bandwidth sensitivity "
           "(normalized to nominal A100 baseline) ===\n%s\n",
           table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(&argc, argv);
    std::vector<ConfigSpec> specs;
    for (const auto &v : kVariants)
        specs.push_back(specFor(v));
    prewarm(specs);
    for (const auto &app : allApps()) {
        for (const auto &v : kVariants) {
            std::string name =
                "fig20/" + app + "/" + std::string(v.label);
            const Variant *vp = &v;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [app, vp](benchmark::State &state) {
                    ConfigSpec spec = specFor(*vp);
                    for (auto _ : state) {
                        benchmark::DoNotOptimize(
                            cachedRun(spec, app).weightedCycles);
                    }
                    state.counters["sim_cycles"] =
                        cachedRun(spec, app).weightedCycles;
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printFigure();
    return 0;
}
