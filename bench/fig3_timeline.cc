/**
 * @file
 * Figure 3: chip-wide utilization timeline of the Pointnet++ gather
 * kernel — alternating memory/compute phases on the baseline versus
 * sustained overlapped utilization with WASP.
 */

#include <map>
#include <mutex>

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/thread_pool.hh"
#include "harness/configs.hh"
#include "harness/runner.hh"
#include "workloads/kernels.hh"

using namespace wasp;
using namespace wasp::bench;
using namespace wasp::harness;

namespace
{

sim::RunStats
runTimeline(PaperConfig which)
{
    static std::mutex mu;
    static std::map<PaperConfig, sim::RunStats> memo;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = memo.find(which);
        if (it != memo.end())
            return it->second;
    }
    ConfigSpec spec = makeConfig(which);
    spec.gpu.timelineInterval = 256;
    mem::GlobalMemory gmem;
    // The pointnet-style kernel: use-once gathers feeding TensorCore
    // compute.
    workloads::BuiltKernel k =
        workloads::gatherScale(gmem, 28, 28, 65536, 0, 8, true);
    KernelResult kr = runKernel(spec, k, gmem);
    std::lock_guard<std::mutex> lock(mu);
    return memo.emplace(which, kr.stats).first->second;
}

void
printFigure()
{
    sim::RunStats base = runTimeline(PaperConfig::Baseline);
    sim::RunStats wasp = runTimeline(PaperConfig::WaspGpu);
    printf("\n=== Figure 3: Pointnet gather kernel utilization timeline "
           "===\n");
    printf("(tensor-pipe and L2-bandwidth utilization per 256-cycle "
           "interval)\n\n");
    auto show = [](const char *label, const sim::RunStats &stats) {
        printf("%s (total %llu cycles)\n", label,
               static_cast<unsigned long long>(stats.cycles));
        printf("%10s  %-28s %-28s\n", "cycle", "tensor", "l2-bw");
        for (const auto &sample : stats.timeline) {
            auto bar = [](double util) {
                int n = static_cast<int>(util * 24.0 + 0.5);
                n = std::min(n, 24);
                return std::string(static_cast<size_t>(n), '#');
            };
            printf("%10llu  %-28s %-28s\n",
                   static_cast<unsigned long long>(sample.cycle),
                   (bar(sample.tensorUtil) + " " +
                    std::to_string(static_cast<int>(
                        sample.tensorUtil * 100)) + "%")
                       .c_str(),
                   (bar(sample.l2Util) + " " +
                    std::to_string(
                        static_cast<int>(sample.l2Util * 100)) + "%")
                       .c_str());
        }
        printf("\n");
    };
    show("(a) Baseline: alternating memory / compute phases", base);
    show("(b) WASP: overlapped, more consistent utilization", wasp);
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(&argc, argv);
    const PaperConfig kBoth[] = {PaperConfig::Baseline,
                                 PaperConfig::WaspGpu};
    parallelFor(jobs(), 2, [&](size_t i) { runTimeline(kBoth[i]); });
    benchmark::RegisterBenchmark("fig3/pointnet_baseline",
                                 [](benchmark::State &state) {
                                     for (auto _ : state)
                                         benchmark::DoNotOptimize(
                                             runTimeline(
                                                 PaperConfig::Baseline)
                                                 .cycles);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig3/pointnet_wasp",
                                 [](benchmark::State &state) {
                                     for (auto _ : state)
                                         benchmark::DoNotOptimize(
                                             runTimeline(
                                                 PaperConfig::WaspGpu)
                                                 .cycles);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printFigure();
    return 0;
}
