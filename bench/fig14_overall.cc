/**
 * @file
 * Figure 14: overall speedup of the WASP compiler and hardware over the
 * modern GPU baseline (which models CUTLASS warp specialization on GEMM
 * kernels). Four configurations per application, speedups normalized to
 * BASELINE, geometric mean across the suite.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/stats.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::bench;
using namespace wasp::harness;

namespace
{

const std::vector<PaperConfig> kConfigs = {
    PaperConfig::Baseline, PaperConfig::CompilerTile,
    PaperConfig::CompilerAll, PaperConfig::WaspGpu};

void
run(benchmark::State &state, const std::string &app, PaperConfig which)
{
    ConfigSpec spec = makeConfig(which);
    for (auto _ : state) {
        const BenchResult &result = cachedRun(spec, app);
        benchmark::DoNotOptimize(result.weightedCycles);
    }
    const BenchResult &result = cachedRun(spec, app);
    const BenchResult &base =
        cachedRun(makeConfig(PaperConfig::Baseline), app);
    state.counters["sim_cycles"] = result.weightedCycles;
    state.counters["speedup_vs_baseline"] = speedup(base, result);
}

void
printFigure()
{
    Table table({"Benchmark", "BASELINE", "WASP_COMPILER_TILE",
                 "WASP_COMPILER_ALL", "WASP_GPU+COMPILER_ALL"});
    std::vector<std::vector<double>> speedups(kConfigs.size());
    for (const auto &app : allApps()) {
        const BenchResult &base =
            cachedRun(makeConfig(PaperConfig::Baseline), app);
        std::vector<std::string> row{app};
        for (size_t c = 0; c < kConfigs.size(); ++c) {
            const BenchResult &result =
                cachedRun(makeConfig(kConfigs[c]), app);
            double s = speedup(base, result);
            speedups[c].push_back(s);
            row.push_back(fmtSpeedup(s));
        }
        table.row(row);
    }
    std::vector<std::string> gm{"geomean"};
    for (const auto &s : speedups)
        gm.push_back(fmtSpeedup(geomean(s)));
    table.row(gm);
    printf("\n=== Figure 14: speedup over modern GPU baseline ===\n%s\n",
           table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(&argc, argv);
    std::vector<ConfigSpec> specs;
    for (PaperConfig which : kConfigs)
        specs.push_back(makeConfig(which));
    prewarm(specs);
    for (const auto &app : allApps()) {
        for (PaperConfig which : kConfigs) {
            std::string name =
                "fig14/" + app + "/" + paperConfigName(which);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [app, which](benchmark::State &state) {
                    run(state, app, which);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printFigure();
    return 0;
}
