/**
 * @file
 * Figure 16: register footprint per thread block for the top kernel of
 * each benchmark — uniform allocation (every warp sized for the largest
 * stage, current-GPU behaviour) vs WASP's per-stage allocation, both
 * normalized to the non-warp-specialized original kernel.
 */

#include <map>

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/thread_pool.hh"
#include "compiler/waspc.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::bench;
using namespace wasp::harness;

namespace
{

struct Footprints
{
    double baseline = 0.0; ///< original kernel, registers per block
    double uniform = 0.0;  ///< warp specialized, uniform allocation
    double perStage = 0.0; ///< warp specialized, per-stage (WASP)
};

/** Per-benchmark footprints, filled in parallel before any reader. */
std::map<std::string, Footprints> g_footprints;

Footprints
analyze(const workloads::BenchmarkDef &bench)
{
    auto it = g_footprints.find(bench.name);
    if (it != g_footprints.end())
        return it->second;
    // Top kernel == highest weight entry of the mix.
    const workloads::KernelMix *top = &bench.kernels[0];
    for (const auto &mix : bench.kernels) {
        if (mix.weight > top->weight)
            top = &mix;
    }
    mem::GlobalMemory gmem;
    workloads::BuiltKernel k = top->build(gmem);
    compiler::CompileOptions opts;
    opts.streamGather = true;
    compiler::CompileResult cr = compiler::warpSpecialize(k.prog, opts);

    Footprints f;
    const auto &tb0 = k.prog.tb;
    f.baseline = static_cast<double>(k.prog.numRegs) * tb0.totalThreads();
    if (!cr.report.transformed) {
        f.uniform = f.baseline;
        f.perStage = f.baseline;
        return f;
    }
    const auto &tb = cr.program.tb;
    int warps_per_stage = tb.warpsPerStage();
    int max_regs = 1;
    for (int r : tb.stageRegs)
        max_regs = std::max(max_regs, r);
    f.uniform = static_cast<double>(max_regs) * tb.totalThreads();
    for (int r : tb.stageRegs)
        f.perStage += static_cast<double>(r) * warps_per_stage *
                      isa::kWarpSize;
    return f;
}

void
printFigure()
{
    Table table({"Benchmark", "Uniform/Orig", "WASP PerStage/Orig",
                 "PerStage savings vs Uniform"});
    double sum_uniform = 0.0;
    double sum_perstage = 0.0;
    int count = 0;
    for (const auto &bench : workloads::suite()) {
        Footprints f = analyze(bench);
        double u = f.uniform / f.baseline;
        double p = f.perStage / f.baseline;
        table.row({bench.name, fmtDouble(u), fmtDouble(p),
                   fmtPercent(1.0 - p / u)});
        sum_uniform += u;
        sum_perstage += p;
        ++count;
    }
    table.row({"average", fmtDouble(sum_uniform / count),
               fmtDouble(sum_perstage / count),
               fmtPercent(1.0 - sum_perstage / sum_uniform)});
    printf("\n=== Figure 16: thread block register footprint "
           "(normalized to non-specialized kernel) ===\n%s\n",
           table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(&argc, argv);
    {
        const auto &suite = workloads::suite();
        std::vector<Footprints> f(suite.size());
        parallelFor(jobs(), suite.size(),
                    [&](size_t i) { f[i] = analyze(suite[i]); });
        for (size_t i = 0; i < suite.size(); ++i)
            g_footprints[suite[i].name] = f[i];
    }
    for (const auto &bench : workloads::suite()) {
        std::string name = "fig16/" + bench.name;
        const workloads::BenchmarkDef *def = &bench;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [def](benchmark::State &state) {
                Footprints f;
                for (auto _ : state)
                    f = analyze(*def);
                state.counters["uniform_ratio"] = f.uniform / f.baseline;
                state.counters["perstage_ratio"] =
                    f.perStage / f.baseline;
            })
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printFigure();
    return 0;
}
