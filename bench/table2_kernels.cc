/**
 * @file
 * Table II: the benchmark suite with per-kernel median and maximum
 * speedups of WASP (hardware + compiler) over the baseline.
 */

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::bench;
using namespace wasp::harness;

namespace
{

struct KernelSpeedups
{
    double median = 1.0;
    double max = 1.0;
    int kernels = 0;
};

KernelSpeedups
analyze(const std::string &app)
{
    const BenchResult &base =
        cachedRun(makeConfig(PaperConfig::Baseline), app);
    const BenchResult &wasp =
        cachedRun(makeConfig(PaperConfig::WaspGpu), app);
    std::vector<double> speedups;
    for (size_t i = 0; i < base.kernelCycles.size(); ++i) {
        double b = base.kernelCycles[i].second;
        double w = wasp.kernelCycles[i].second;
        if (w > 0.0)
            speedups.push_back(b / w);
    }
    KernelSpeedups result;
    result.kernels = static_cast<int>(speedups.size());
    if (speedups.empty())
        return result;
    std::sort(speedups.begin(), speedups.end());
    result.median = speedups[speedups.size() / 2];
    result.max = speedups.back();
    return result;
}

void
printTable()
{
    Table table({"Name", "Category", "# Kernels", "Median Speedup",
                 "Max Speedup"});
    for (const auto &bench : workloads::suite()) {
        KernelSpeedups s = analyze(bench.name);
        table.row({bench.name, bench.category,
                   std::to_string(s.kernels), fmtSpeedup(s.median),
                   fmtSpeedup(s.max)});
    }
    printf("\n=== Table II: benchmarks and per-kernel WASP speedups "
           "===\n%s\n",
           table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(&argc, argv);
    prewarm({makeConfig(PaperConfig::Baseline),
             makeConfig(PaperConfig::WaspGpu)});
    for (const auto &bench : workloads::suite()) {
        std::string app = bench.name;
        benchmark::RegisterBenchmark(
            ("table2/" + app).c_str(),
            [app](benchmark::State &state) {
                KernelSpeedups s;
                for (auto _ : state)
                    s = analyze(app);
                state.counters["median_speedup"] = s.median;
                state.counters["max_speedup"] = s.max;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    return 0;
}
