/**
 * @file
 * Figure 18: sensitivity to register file queue size. Sweeps 8..64
 * entries per queue on the full WASP configuration; larger queues buy
 * more overlap until register pressure cuts SM occupancy.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/stats.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::bench;
using namespace wasp::harness;

namespace
{

const std::vector<int> kSizes = {8, 16, 32, 64};

ConfigSpec
specFor(int entries)
{
    ConfigSpec spec = makeConfig(PaperConfig::WaspGpu, 1.0, entries);
    spec.name = "WASP_RFQ" + std::to_string(entries);
    return spec;
}

void
printFigure()
{
    std::vector<std::string> headers{"Benchmark"};
    for (int s : kSizes)
        headers.push_back(std::to_string(s) + " entries");
    Table table(headers);
    std::vector<std::vector<double>> speedups(kSizes.size());
    for (const auto &app : allApps()) {
        const BenchResult &base = cachedRun(specFor(kSizes[0]), app);
        std::vector<std::string> row{app};
        for (size_t c = 0; c < kSizes.size(); ++c) {
            const BenchResult &result = cachedRun(specFor(kSizes[c]), app);
            double s = speedup(base, result);
            speedups[c].push_back(s);
            row.push_back(fmtSpeedup(s));
        }
        table.row(row);
    }
    std::vector<std::string> gm{"geomean vs 8"};
    for (const auto &s : speedups)
        gm.push_back(fmtSpeedup(geomean(s)));
    table.row(gm);
    printf("\n=== Figure 18: performance vs RFQ size "
           "(normalized to 8 entries) ===\n%s\n",
           table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(&argc, argv);
    std::vector<ConfigSpec> specs;
    for (int entries : kSizes)
        specs.push_back(specFor(entries));
    prewarm(specs);
    for (const auto &app : allApps()) {
        for (int entries : kSizes) {
            std::string name =
                "fig18/" + app + "/rfq" + std::to_string(entries);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [app, entries](benchmark::State &state) {
                    ConfigSpec spec = specFor(entries);
                    for (auto _ : state) {
                        benchmark::DoNotOptimize(
                            cachedRun(spec, app).weightedCycles);
                    }
                    state.counters["sim_cycles"] =
                        cachedRun(spec, app).weightedCycles;
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printFigure();
    return 0;
}
