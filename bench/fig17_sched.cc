/**
 * @file
 * Figure 17: pipeline-aware warp scheduling policies against the
 * greedy-then-oldest (GTO) baseline, all on otherwise-full WASP
 * hardware: producer-first, consumer-first, full-queue-first, and the
 * combined WASP policy (full queues, then ready queues, then earlier
 * stages).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/stats.hh"
#include "core/sched_policy.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::bench;
using namespace wasp::harness;

namespace
{

const std::vector<sim::SchedPolicy> kPolicies = {
    sim::SchedPolicy::Gto, sim::SchedPolicy::ProducerFirst,
    sim::SchedPolicy::ConsumerFirst, sim::SchedPolicy::QueueFullFirst,
    sim::SchedPolicy::WaspCombined};

ConfigSpec
specFor(sim::SchedPolicy policy)
{
    ConfigSpec spec = makeConfig(PaperConfig::WaspGpu);
    spec.gpu.sched = policy;
    spec.name = std::string("WASP+") + core::schedPolicyName(policy);
    return spec;
}

void
printFigure()
{
    std::vector<std::string> headers{"Benchmark"};
    for (auto p : kPolicies) {
        if (p != sim::SchedPolicy::Gto)
            headers.push_back(core::schedPolicyName(p));
    }
    Table table(headers);
    std::vector<std::vector<double>> speedups(kPolicies.size() - 1);
    for (const auto &app : allApps()) {
        const BenchResult &base =
            cachedRun(specFor(sim::SchedPolicy::Gto), app);
        std::vector<std::string> row{app};
        for (size_t c = 1; c < kPolicies.size(); ++c) {
            const BenchResult &result =
                cachedRun(specFor(kPolicies[c]), app);
            double s = speedup(base, result);
            speedups[c - 1].push_back(s);
            row.push_back(fmtSpeedup(s));
        }
        table.row(row);
    }
    std::vector<std::string> gm{"geomean"};
    for (const auto &s : speedups)
        gm.push_back(fmtSpeedup(geomean(s)));
    table.row(gm);
    printf("\n=== Figure 17: pipeline-aware warp scheduling vs "
           "greedy-then-oldest ===\n%s\n",
           table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(&argc, argv);
    std::vector<ConfigSpec> specs;
    for (auto policy : kPolicies)
        specs.push_back(specFor(policy));
    prewarm(specs);
    for (const auto &app : allApps()) {
        for (auto policy : kPolicies) {
            std::string name = "fig17/" + app + "/" +
                               core::schedPolicyName(policy);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [app, policy](benchmark::State &state) {
                    ConfigSpec spec = specFor(policy);
                    for (auto _ : state) {
                        benchmark::DoNotOptimize(
                            cachedRun(spec, app).weightedCycles);
                    }
                    state.counters["sim_cycles"] =
                        cachedRun(spec, app).weightedCycles;
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printFigure();
    return 0;
}
