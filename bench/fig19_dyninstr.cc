/**
 * @file
 * Figure 19: dynamic warp instructions executed, by category, for the
 * baseline (B), WASP with software address generation (W: WASP GPU but
 * loops generating addresses on the processing blocks), and WASP-TMA
 * (T: address streams offloaded to the TMA engine). Counts are
 * normalized to the baseline.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::bench;
using namespace wasp::harness;

namespace
{

ConfigSpec
waspNoTma()
{
    ConfigSpec spec = makeConfig(PaperConfig::WaspGpu);
    spec.copts.emitTma = false;
    spec.gpu.waspTmaEnabled = false;
    spec.name = "WASP_SW_ADDR";
    return spec;
}

double
total(const BenchResult &result)
{
    double t = 0.0;
    for (double v : result.dynInstrs)
        t += v;
    return t;
}

void
printFigure()
{
    Table table({"Benchmark", "B total", "W total/B", "T total/B",
                 "W addr+ctrl share", "T addr+ctrl share"});
    for (const auto &app : allApps()) {
        const BenchResult &b =
            cachedRun(makeConfig(PaperConfig::Baseline), app);
        const BenchResult &w = cachedRun(waspNoTma(), app);
        const BenchResult &t =
            cachedRun(makeConfig(PaperConfig::WaspGpu), app);
        auto share = [](const BenchResult &r) {
            using isa::InstrCategory;
            double addr =
                r.dynInstrs[static_cast<size_t>(InstrCategory::Address)] +
                r.dynInstrs[static_cast<size_t>(InstrCategory::Control)] +
                r.dynInstrs[static_cast<size_t>(InstrCategory::Overhead)];
            return addr / std::max(total(r), 1.0);
        };
        table.row({app, fmtDouble(total(b), 0),
                   fmtDouble(total(w) / total(b)),
                   fmtDouble(total(t) / total(b)), fmtPercent(share(w)),
                   fmtPercent(share(t))});
    }
    printf("\n=== Figure 19: dynamic instructions — baseline (B), WASP "
           "software address generation (W), WASP-TMA (T) ===\n%s\n",
           table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(&argc, argv);
    prewarm({makeConfig(PaperConfig::Baseline), waspNoTma(),
             makeConfig(PaperConfig::WaspGpu)});
    for (const auto &app : allApps()) {
        benchmark::RegisterBenchmark(
            ("fig19/" + app).c_str(),
            [app](benchmark::State &state) {
                for (auto _ : state) {
                    benchmark::DoNotOptimize(
                        total(cachedRun(makeConfig(PaperConfig::WaspGpu),
                                        app)));
                }
                const BenchResult &b =
                    cachedRun(makeConfig(PaperConfig::Baseline), app);
                const BenchResult &t =
                    cachedRun(makeConfig(PaperConfig::WaspGpu), app);
                state.counters["tma_over_baseline"] =
                    total(t) / std::max(total(b), 1.0);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printFigure();
    return 0;
}
