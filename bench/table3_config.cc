/**
 * @file
 * Table III: the simulator configuration used throughout the
 * evaluation (a bandwidth-scaled A100 per DESIGN.md) and the WASP
 * additions.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "harness/configs.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::harness;

namespace
{

void
printTable()
{
    ConfigSpec wasp = makeConfig(PaperConfig::WaspGpu);
    const sim::GpuConfig &g = wasp.gpu;
    Table table({"Parameter", "Value"});
    table.row({"SMs", std::to_string(g.numSms) +
                          " (scaled A100; see DESIGN.md)"});
    table.row({"Processing Blocks", std::to_string(g.pbsPerSm) +
                                        " per SM"});
    table.row({"Register File",
               std::to_string(g.regsPerPb * g.pbsPerSm * 4 / 1024) +
                   " KB per SM"});
    table.row({"L1/SMEM",
               std::to_string(g.l1Bytes / 1024) + " KB L1 + " +
                   std::to_string(g.smemPerSm / 1024) + " KB SMEM"});
    table.row({"L2 Cache", std::to_string(g.l2Bytes / 1024) + " KB, " +
                               std::to_string(g.l2Banks) + " banks"});
    table.row({"DRAM", fmtDouble(g.dramBytesPerCycle, 0) +
                           " B/cycle, " +
                           std::to_string(g.dramLatency) +
                           " cycle latency"});
    table.row({"Warp scheduling (baseline)", "Greedy-then-oldest (GTO)"});
    table.row({"Warp Specialization",
               "HW arrive/wait barriers; TMA-like offload accelerator"});
    table.row({"WASP RFQ", std::to_string(g.rfqEntries) +
                               "-entry RFQ per warp"});
    table.row({"WASP mapping/scheduling",
               "group_pipeline mapping; combined queue/stage policy"});
    table.row({"WASP register allocation", "per-stage"});
    table.row({"WASP-TMA", "stream + gather offload, " +
                               std::to_string(g.tmaSectorsPerCycle) +
                               " sectors/cycle"});
    table.row({"Max pipeline stages", std::to_string(g.maxStages)});
    printf("\n=== Table III: simulated GPU configuration ===\n%s\n",
           table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // No simulations to fan out, but -j is accepted uniformly.
    wasp::bench::initJobs(&argc, argv);
    benchmark::RegisterBenchmark("table3/config",
                                 [](benchmark::State &state) {
                                     for (auto _ : state) {
                                         ConfigSpec spec = makeConfig(
                                             PaperConfig::WaspGpu);
                                         benchmark::DoNotOptimize(
                                             spec.gpu.numSms);
                                     }
                                 })
        ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    return 0;
}
