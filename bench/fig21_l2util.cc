/**
 * @file
 * Figure 21: L2 bandwidth utilization on the baseline and on WASP. The
 * point of warp specialization is overlap, which shows up directly as
 * higher sustained L2 (and DRAM) bandwidth.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "harness/report.hh"

using namespace wasp;
using namespace wasp::bench;
using namespace wasp::harness;

namespace
{

void
printFigure()
{
    Table table({"Benchmark", "BASELINE L2 util", "WASP L2 util",
                 "BASELINE DRAM util", "WASP DRAM util", "L1 hit B->W"});
    for (const auto &app : allApps()) {
        const BenchResult &b =
            cachedRun(makeConfig(PaperConfig::Baseline), app);
        const BenchResult &w =
            cachedRun(makeConfig(PaperConfig::WaspGpu), app);
        table.row({app, fmtPercent(b.l2Utilization),
                   fmtPercent(w.l2Utilization),
                   fmtPercent(b.dramUtilization),
                   fmtPercent(w.dramUtilization),
                   fmtPercent(b.l1HitRate) + " -> " +
                       fmtPercent(w.l1HitRate)});
    }
    printf("\n=== Figure 21: L2 bandwidth utilization, baseline vs WASP "
           "===\n%s\n",
           table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(&argc, argv);
    prewarm({makeConfig(PaperConfig::Baseline),
             makeConfig(PaperConfig::WaspGpu)});
    for (const auto &app : allApps()) {
        benchmark::RegisterBenchmark(
            ("fig21/" + app).c_str(),
            [app](benchmark::State &state) {
                for (auto _ : state) {
                    benchmark::DoNotOptimize(
                        cachedRun(makeConfig(PaperConfig::WaspGpu), app)
                            .l2Utilization);
                }
                state.counters["baseline_l2_util"] =
                    cachedRun(makeConfig(PaperConfig::Baseline), app)
                        .l2Utilization;
                state.counters["wasp_l2_util"] =
                    cachedRun(makeConfig(PaperConfig::WaspGpu), app)
                        .l2Utilization;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printFigure();
    return 0;
}
