#include "bench_common.hh"

#include <map>

namespace wasp::bench
{

const harness::BenchResult &
cachedRun(const harness::ConfigSpec &spec, const std::string &app)
{
    // Key on the config name plus the knobs that vary across figures.
    static std::map<std::string, harness::BenchResult> cache;
    std::string key = spec.name + "|" + app + "|" +
                      std::to_string(spec.gpu.dramBytesPerCycle) + "|" +
                      std::to_string(spec.gpu.rfqEntries) + "|" +
                      std::to_string(static_cast<int>(spec.gpu.sched)) +
                      "|" +
                      std::to_string(spec.copts.emitTma) +
                      std::to_string(spec.gpu.waspTmaEnabled);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    harness::BenchResult result =
        harness::runBenchmark(spec, workloads::benchmark(app));
    return cache.emplace(key, std::move(result)).first->second;
}

std::vector<std::string>
allApps()
{
    std::vector<std::string> names;
    for (const auto &b : workloads::suite())
        names.push_back(b.name);
    return names;
}

} // namespace wasp::bench
