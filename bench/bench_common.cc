#include "bench_common.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "common/thread_pool.hh"

namespace wasp::bench
{

namespace
{

int g_jobs = 0; ///< 0 = initJobs never ran; fall back to default.

struct CacheEntry
{
    std::once_flag fill;
    harness::BenchResult result;
};

} // namespace

const harness::BenchResult &
cachedRun(const harness::ConfigSpec &spec, const std::string &app)
{
    // Key on the config name plus the knobs that vary across figures.
    static std::mutex mu;
    static std::map<std::string, std::unique_ptr<CacheEntry>> cache;
    std::string key = spec.name + "|" + app + "|" +
                      std::to_string(spec.gpu.dramBytesPerCycle) + "|" +
                      std::to_string(spec.gpu.rfqEntries) + "|" +
                      std::to_string(static_cast<int>(spec.gpu.sched)) +
                      "|" +
                      std::to_string(spec.copts.emitTma) +
                      std::to_string(spec.gpu.waspTmaEnabled);
    CacheEntry *entry;
    {
        std::lock_guard<std::mutex> lock(mu);
        std::unique_ptr<CacheEntry> &slot = cache[key];
        if (!slot)
            slot = std::make_unique<CacheEntry>();
        entry = slot.get();
    }
    // Entries are never erased, so `entry` outlives the lock; call_once
    // makes concurrent callers of the same key block on the one filling
    // thread rather than simulate twice.
    std::call_once(entry->fill, [&] {
        entry->result = harness::runBenchmark(spec,
                                              workloads::benchmark(app));
    });
    return entry->result;
}

std::vector<std::string>
allApps()
{
    std::vector<std::string> names;
    for (const auto &b : workloads::suite())
        names.push_back(b.name);
    return names;
}

int
initJobs(int *argc, char **argv)
{
    int jobs = 0;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (!std::strcmp(arg, "-j") || !std::strcmp(arg, "--jobs")) {
            if (i + 1 < *argc)
                value = argv[++i];
        } else if (!std::strncmp(arg, "-j", 2) && arg[2] != '\0') {
            value = arg + 2;
        } else if (!std::strncmp(arg, "--jobs=", 7)) {
            value = arg + 7;
        } else {
            argv[out++] = argv[i];
            continue;
        }
        if (value != nullptr)
            jobs = std::atoi(value);
    }
    *argc = out;
    argv[out] = nullptr;
    g_jobs = jobs > 0 ? jobs : ThreadPool::defaultJobs();
    return g_jobs;
}

int
jobs()
{
    return g_jobs > 0 ? g_jobs : ThreadPool::defaultJobs();
}

void
prewarm(const std::vector<harness::ConfigSpec> &specs)
{
    prewarm(specs, allApps());
}

void
prewarm(const std::vector<harness::ConfigSpec> &specs,
        const std::vector<std::string> &apps)
{
    size_t n = specs.size() * apps.size();
    if (n == 0)
        return;
    auto start = std::chrono::steady_clock::now();
    parallelFor(jobs(), n, [&](size_t i) {
        cachedRun(specs[i / apps.size()], apps[i % apps.size()]);
    });
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    // Timing goes to stderr so stdout stays byte-identical across -j.
    std::fprintf(stderr,
                 "prewarm: %zu simulations on %d thread(s) in %lld ms\n",
                 n, jobs(), static_cast<long long>(ms));
}

} // namespace wasp::bench
